// Package lockcheck is an extravet fixture reproducing the engine's
// lock-split shape: a DB with an RWMutex statement lock, annotated
// mutators and readers, scoped and held-on-return acquirers, and a
// classify-then-dispatch statement switch. Lines marked with a
// `// want` comment must produce exactly that diagnostic; unmarked
// lines must stay clean.
package lockcheck

import "sync"

type DB struct {
	mu sync.RWMutex // extra:lock db.mu
}

// mutate writes DB state.
//
// extra:requires db.mu.W
func (d *DB) mutate() {}

// read observes DB state.
//
// extra:requires db.mu.R
func (d *DB) read() {}

// withLock takes and releases the lock itself.
//
// extra:acquires db.mu.W
func (d *DB) withLock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mutate()
}

// lockShared returns with the shared lock still held, handing the
// unlock back to the caller (the lockStatements shape).
//
// extra:holds db.mu.R
func (d *DB) lockShared() func() {
	d.mu.RLock()
	return d.mu.RUnlock
}

func goodExclusive(d *DB) {
	d.mu.Lock()
	d.mutate()
	d.mu.Unlock()
}

func goodShared(d *DB) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.read()
}

func goodAcquirer(d *DB) {
	d.withLock()
}

func goodHolds(d *DB) {
	unlock := d.lockShared()
	defer unlock()
	d.read()
}

func badNoLock(d *DB) {
	d.mutate() // want `requires db.mu.W, but badNoLock holds no lock`
}

func badSharedForWrite(d *DB) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.mutate() // want `requires db.mu.W, but badSharedForWrite holds db.mu.R`
}

func badReentrant(d *DB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.withLock() // want `self-deadlock`
}

func badAfterUnlock(d *DB) {
	d.mu.Lock()
	d.mutate()
	d.mu.Unlock()
	d.mutate() // want `requires db.mu.W, but badAfterUnlock holds no lock`
}

func badHoldsThenWrite(d *DB) {
	unlock := d.lockShared()
	defer unlock()
	d.mutate() // want `requires db.mu.W, but badHoldsThenWrite holds db.mu.R`
}

// planCache mirrors the engine's second annotated lock (the plan
// cache's RWMutex): shared-locked probes, exclusive-locked inserts, and
// a distinct lock name so holding the statement lock must not satisfy a
// plan-cache requirement.
type planCache struct {
	mu sync.RWMutex // extra:lock plancache.mu
	m  map[string]int
}

// probe reads the cache map.
//
// extra:requires plancache.mu.R
func (pc *planCache) probe(k string) int { return pc.m[k] }

// insert writes the cache map.
//
// extra:requires plancache.mu.W
func (pc *planCache) insert(k string, v int) { pc.m[k] = v }

// get is the hit path: shared lock around the probe.
//
// extra:acquires plancache.mu.R
func (pc *planCache) get(k string) int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return pc.probe(k)
}

// put is the fill path: exclusive lock around the insert.
//
// extra:acquires plancache.mu.W
func (pc *planCache) put(k string, v int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.insert(k, v)
}

func goodCacheRoundTrip(pc *planCache) {
	pc.put("k", 1)
	_ = pc.get("k")
}

func badCacheNoLock(pc *planCache) {
	pc.insert("k", 1) // want `requires plancache.mu.W, but badCacheNoLock holds no lock`
}

func badCacheSharedForWrite(pc *planCache) {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	pc.insert("k", 1) // want `requires plancache.mu.W, but badCacheSharedForWrite holds plancache.mu.R`
}

func badCacheReentrantFill(pc *planCache) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.put("k", 1) // want `self-deadlock`
}

// Holding the statement lock says nothing about the plan-cache lock:
// the two annotated locks are tracked independently.
func badWrongLockHeld(d *DB, pc *planCache) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = pc.probe("k") // want `requires plancache.mu.R, but badWrongLockHeld holds no lock`
}

var _ = []func(*planCache){
	goodCacheRoundTrip, badCacheNoLock, badCacheSharedForWrite, badCacheReentrantFill,
}
var _ = badWrongLockHeld

// Statement kinds mirroring the dispatcher: the case-arm type names
// line up with lint.StmtClass, so the dispatch cross-check applies.
type (
	Retrieve        struct{ Into string }
	Append          struct{}
	Delete          struct{}
	Replace         struct{}
	SetStmt         struct{}
	Execute         struct{}
	DefineType      struct{}
	DefineEnum      struct{}
	DefineFunction  struct{}
	DefineProcedure struct{}
	DefineIndex     struct{}
	Create          struct{}
	Drop            struct{}
	RangeDecl       struct{}
	Grant           struct{}
	Revoke          struct{}
	Frobnicate      struct{} // deliberately absent from lint.StmtClass
)

// run dispatches one statement under the classify-then-lock scheme:
// write-classified arms execute with the exclusive lock, so mutations
// there are fine; the read-classified retrieve arm only has the shared
// lock.
//
// extra:requires db.mu.R
// extra:dispatch db.mu ReadOnly
func run(d *DB, st any) {
	switch st.(type) {
	case *Retrieve:
		d.read()
		d.mutate() // want `requires db.mu.W, but run holds db.mu.R`
	case *Append, *Delete, *Replace, *SetStmt, *Execute,
		*DefineType, *DefineEnum, *DefineFunction, *DefineProcedure,
		*DefineIndex, *Create, *Drop, *RangeDecl, *Grant, *Revoke:
		d.mutate()
	case *Frobnicate: // want `not classified in lint.StmtClass`
		d.read()
	}
}

// keep the otherwise-unused fixture entry points alive for the compiler
var _ = []func(*DB){
	goodExclusive, goodShared, goodAcquirer, goodHolds,
	badNoLock, badSharedForWrite, badReentrant, badAfterUnlock, badHoldsThenWrite,
}
var _ = run
