// Package lockcheck is an extravet fixture reproducing the engine's
// lock-split shape: a DB with an RWMutex statement lock, annotated
// mutators and readers, scoped and held-on-return acquirers, and a
// classify-then-dispatch statement switch. Lines marked with a
// `// want` comment must produce exactly that diagnostic; unmarked
// lines must stay clean.
package lockcheck

import "sync"

type DB struct {
	wmu sync.Mutex   // extra:lock db.wmu
	mu  sync.RWMutex // extra:lock db.mu
}

// mutate writes DB state.
//
// extra:requires db.mu.W
func (d *DB) mutate() {}

// read observes DB state.
//
// extra:requires db.mu.R
func (d *DB) read() {}

// withLock takes and releases the lock itself.
//
// extra:acquires db.mu.W
func (d *DB) withLock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mutate()
}

// lockShared returns with the shared lock still held, handing the
// unlock back to the caller (the lockStatements shape).
//
// extra:holds db.mu.R
func (d *DB) lockShared() func() {
	d.mu.RLock()
	return d.mu.RUnlock
}

func goodExclusive(d *DB) {
	d.mu.Lock()
	d.mutate()
	d.mu.Unlock()
}

func goodShared(d *DB) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.read()
}

func goodAcquirer(d *DB) {
	d.withLock()
}

func goodHolds(d *DB) {
	unlock := d.lockShared()
	defer unlock()
	d.read()
}

// goodTryLock is the group-commit leader shape: win the lock with
// TryLock, run the requires-annotated body, release.
func goodTryLock(d *DB) {
	if d.mu.TryLock() {
		d.mutate()
		d.mu.Unlock()
	}
}

func badAfterTryUnlock(d *DB) {
	if d.mu.TryLock() {
		d.mu.Unlock()
	}
	d.mutate() // want `requires db.mu.W, but badAfterTryUnlock holds no lock`
}

func badNoLock(d *DB) {
	d.mutate() // want `requires db.mu.W, but badNoLock holds no lock`
}

func badSharedForWrite(d *DB) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.mutate() // want `requires db.mu.W, but badSharedForWrite holds db.mu.R`
}

func badReentrant(d *DB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.withLock() // want `self-deadlock`
}

func badAfterUnlock(d *DB) {
	d.mu.Lock()
	d.mutate()
	d.mu.Unlock()
	d.mutate() // want `requires db.mu.W, but badAfterUnlock holds no lock`
}

func badHoldsThenWrite(d *DB) {
	unlock := d.lockShared()
	defer unlock()
	d.mutate() // want `requires db.mu.W, but badHoldsThenWrite holds db.mu.R`
}

// planCache mirrors the engine's second annotated lock (the plan
// cache's RWMutex): shared-locked probes, exclusive-locked inserts, and
// a distinct lock name so holding the statement lock must not satisfy a
// plan-cache requirement.
type planCache struct {
	mu sync.RWMutex // extra:lock plancache.mu
	m  map[string]int
}

// probe reads the cache map.
//
// extra:requires plancache.mu.R
func (pc *planCache) probe(k string) int { return pc.m[k] }

// insert writes the cache map.
//
// extra:requires plancache.mu.W
func (pc *planCache) insert(k string, v int) { pc.m[k] = v }

// get is the hit path: shared lock around the probe.
//
// extra:acquires plancache.mu.R
func (pc *planCache) get(k string) int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return pc.probe(k)
}

// put is the fill path: exclusive lock around the insert.
//
// extra:acquires plancache.mu.W
func (pc *planCache) put(k string, v int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.insert(k, v)
}

func goodCacheRoundTrip(pc *planCache) {
	pc.put("k", 1)
	_ = pc.get("k")
}

func badCacheNoLock(pc *planCache) {
	pc.insert("k", 1) // want `requires plancache.mu.W, but badCacheNoLock holds no lock`
}

func badCacheSharedForWrite(pc *planCache) {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	pc.insert("k", 1) // want `requires plancache.mu.W, but badCacheSharedForWrite holds plancache.mu.R`
}

func badCacheReentrantFill(pc *planCache) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.put("k", 1) // want `self-deadlock`
}

// Holding the statement lock says nothing about the plan-cache lock:
// the two annotated locks are tracked independently.
func badWrongLockHeld(d *DB, pc *planCache) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = pc.probe("k") // want `requires plancache.mu.R, but badWrongLockHeld holds no lock`
}

var _ = []func(*planCache){
	goodCacheRoundTrip, badCacheNoLock, badCacheSharedForWrite, badCacheReentrantFill,
}
var _ = badWrongLockHeld

// Statement kinds mirroring the dispatcher: the case-arm type names
// line up with lint.StmtClass, so the dispatch cross-check applies.
type (
	Retrieve        struct{ Into string }
	Append          struct{}
	Delete          struct{}
	Replace         struct{}
	SetStmt         struct{}
	Execute         struct{}
	DefineType      struct{}
	DefineEnum      struct{}
	DefineFunction  struct{}
	DefineProcedure struct{}
	DefineIndex     struct{}
	Create          struct{}
	Drop            struct{}
	RangeDecl       struct{}
	Grant           struct{}
	Revoke          struct{}
	Frobnicate      struct{} // deliberately absent from lint.StmtClass
)

// run dispatches one statement under the classify-then-lock scheme:
// write-classified arms execute with the exclusive lock, so mutations
// there are fine; the read-classified retrieve arm only has the shared
// lock.
//
// extra:requires db.mu.R
// extra:dispatch db.mu ReadOnly
func run(d *DB, st any) {
	switch st.(type) {
	case *Retrieve:
		d.read()
		d.mutate() // want `requires db.mu.W, but run holds db.mu.R`
	case *Append, *Delete, *Replace, *SetStmt, *Execute,
		*DefineType, *DefineEnum, *DefineFunction, *DefineProcedure,
		*DefineIndex, *Create, *Drop, *RangeDecl, *Grant, *Revoke:
		d.mutate()
	case *Frobnicate: // want `not classified in lint.StmtClass`
		d.read()
	}
}

// Two-lock MVCC shape: wmu is the commit lock serializing write
// batches; mu shrinks to pin windows (shared) and DDL windows
// (exclusive). The fixtures below pin down the split — commits need
// only wmu, the commit lock says nothing about mu, and the read path
// holds mu only while pinning, never during execution.

// commit publishes a write batch's snapshot. Only the commit lock is
// needed; readers never block on it.
//
// extra:requires db.wmu.W
func (d *DB) commit() {}

// runWrite is the write-batch shape: the commit lock for the whole
// batch, the statement lock only around the DDL arm.
//
// extra:acquires db.wmu.W
// extra:acquires db.mu.W
func (d *DB) runWrite(ddl bool) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if ddl {
		d.mu.Lock()
		d.mutate()
		d.commit()
		d.mu.Unlock()
		return
	}
	d.commit()
}

// beginPin opens a read statement's pin window: shared statement lock
// held on return, released by the caller when planning is done.
//
// extra:holds db.mu.R
func (d *DB) beginPin() { d.mu.RLock() }

// execPinned executes a compiled plan against a pinned snapshot. No
// lock annotation at all: execution requires neither the statement
// lock nor the commit lock.
func (d *DB) execPinned() {}

// goodSnapshotRead is the MVCC read-statement shape: pin, plan inside
// the shared window, release, then execute lock-free. The executor
// call after RUnlock is clean — proof the old statement-scoped db.mu
// hold is gone from the read path.
func goodSnapshotRead(d *DB) {
	d.beginPin()
	d.read() // planning happens inside the pin window
	d.mu.RUnlock()
	d.execPinned() // execution happens outside it, no diagnostic
}

func goodWriteBatch(d *DB) {
	d.runWrite(true)
	d.runWrite(false)
}

func badCatalogAfterPin(d *DB) {
	d.beginPin()
	d.mu.RUnlock()
	d.read() // want `requires db.mu.R, but badCatalogAfterPin holds no lock`
}

func badCommitNoLock(d *DB) {
	d.commit() // want `requires db.wmu.W, but badCommitNoLock holds no lock`
}

// The commit lock is not the statement lock: holding wmu does not
// authorize catalog mutation, and vice versa.
func badCommitLockForCatalog(d *DB) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.mutate() // want `requires db.mu.W, but badCommitLockForCatalog holds no lock`
}

func badStatementLockForCommit(d *DB) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.commit() // want `requires db.wmu.W, but badStatementLockForCommit holds no lock`
}

func badReentrantBatch(d *DB) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.runWrite(false) // want `self-deadlock`
}

// keep the otherwise-unused fixture entry points alive for the compiler
var _ = []func(*DB){
	goodExclusive, goodShared, goodAcquirer, goodHolds,
	goodTryLock, badAfterTryUnlock,
	badNoLock, badSharedForWrite, badReentrant, badAfterUnlock, badHoldsThenWrite,
	goodSnapshotRead, goodWriteBatch, badCatalogAfterPin, badCommitNoLock,
	badCommitLockForCatalog, badStatementLockForCommit, badReentrantBatch,
}
var _ = run
