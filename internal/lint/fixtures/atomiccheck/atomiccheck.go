// Package atomiccheck is an extravet fixture: once a field is accessed
// through sync/atomic, every plain access to it is a finding, and
// 64-bit function-style atomics on misaligned fields are findings too.
package atomiccheck

import "sync/atomic"

type counters struct {
	hits int64 // offset 0: safely aligned everywhere
	gate int32 // 4 bytes of padding trouble for what follows
	slow int64 // offset 12 under 32-bit layout: not 8-aligned
}

func incHits(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

func goodLoad(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

func badRead(c *counters) int64 {
	return c.hits // want `plain access to hits`
}

func badWrite(c *counters) {
	c.hits = 0 // want `plain access to hits`
}

func badAlign(c *counters) {
	atomic.AddInt64(&c.slow, 1) // want `not guaranteed 8-byte aligned`
}

// gate is never touched atomically, so plain access is fine.
func plainGate(c *counters) int32 {
	c.gate++
	return c.gate
}

// typed is the preferred shape: atomic.Uint64 carries its own
// alignment and its method calls are not plain accesses.
type typed struct {
	pad int32
	v   atomic.Uint64
}

func goodTyped(t *typed) uint64 {
	t.v.Add(1)
	return t.v.Load()
}
