// Package verbump is an extravet fixture: a miniature version-bearing
// store (detected by its bump method and atomic version field) whose
// exported mutators must bump the version — including mutation through
// a local that aliases store state, the shape of the Release bug the
// real analyzer caught.
package verbump

import "sync/atomic"

type objInfo struct {
	owner uint64
}

type Store struct {
	version atomic.Uint64
	omap    map[uint64]*objInfo
	vars    map[string]int
}

func (s *Store) bump() { s.version.Add(1) }

// Version reads the counter; no mutation anywhere.
func (s *Store) Version() uint64 { return s.version.Load() }

// NewStore writes only to a store that has not escaped yet.
func NewStore() *Store {
	s := &Store{omap: map[uint64]*objInfo{}, vars: map[string]int{}}
	s.vars["init"] = 0
	return s
}

// Insert mutates and bumps: the contract honored.
func (s *Store) Insert(id uint64) {
	s.omap[id] = &objInfo{}
	s.bump()
}

// Drop mutates via delete and bumps.
func (s *Store) Drop(name string) {
	delete(s.vars, name)
	s.bump()
}

// Release mutates through an alias of store state without bumping —
// the exact shape of the bug this analyzer exists for.
func (s *Store) Release(id uint64) { // want `never bumps Store.Version`
	if info, ok := s.omap[id]; ok {
		info.owner = 0
	}
}

// setRaw is an unexported helper; it may rely on its callers to bump.
func (s *Store) setRaw(name string) { s.vars[name] = 1 }

// SetBoth bumps after delegating the write: clean.
func (s *Store) SetBoth(name string) {
	s.setRaw(name)
	s.bump()
}

// SetLeak delegates the write and forgets the bump.
func (s *Store) SetLeak(name string) { // want `never bumps Store.Version`
	s.setRaw(name)
}

// SetExternal's bump happens somewhere the checker cannot see; the
// annotation is the escape hatch and must silence the finding.
//
// extra:bumps
func (s *Store) SetExternal(name string) {
	s.vars[name] = 2
}

// Get only reads.
func (s *Store) Get(id uint64) *objInfo { return s.omap[id] }
