// Package spanleak is an extravet fixture for the pairing discipline of
// recycled resources: trace spans (StartSpan/StartSpanAt/StartPhase
// paired with EndSpan/EndPhase) and sync.Pool objects (Get paired with
// Put). The accept shapes cover inline pairing, deferred release,
// deferred-closure release, handoff by return and store-away; the
// reject shapes are the early error return, the discarded acquire and
// falling off the end of the function.
package spanleak

import (
	"errors"
	"sync"
	"time"
)

type Span struct{ name string }

type Tracer struct{ active []*Span }

func (t *Tracer) StartSpan(name string) *Span {
	s := &Span{name: name}
	t.active = append(t.active, s)
	return s
}

func (t *Tracer) StartSpanAt(name string, _ time.Time) *Span { return t.StartSpan(name) }

func (t *Tracer) StartPhase(name string) *Span { return t.StartSpan(name) }

func (t *Tracer) EndSpan(s *Span) {
	for i, a := range t.active {
		if a == s {
			t.active = append(t.active[:i], t.active[i+1:]...)
			return
		}
	}
}

func (t *Tracer) EndPhase(s *Span) { t.EndSpan(s) }

var errFail = errors.New("fail")

func work(*Span)    {}
func consume([]byte) {}

// goodPaired starts and finishes inline.
func goodPaired(t *Tracer) {
	s := t.StartSpan("paired")
	work(s)
	t.EndSpan(s)
}

// goodDeferred finishes via defer, so every return path is covered.
func goodDeferred(t *Tracer, fail bool) error {
	s := t.StartSpanAt("deferred", time.Time{})
	defer t.EndSpan(s)
	if fail {
		return errFail
	}
	return nil
}

// goodDeferredClosure releases through a deferred closure (the cleanup
// idiom); the closure's release counts for this function.
func goodDeferredClosure(t *Tracer) {
	s := t.StartPhase("closure")
	defer func() { t.EndPhase(s) }()
	work(s)
}

// goodHandoff returns the span: the obligation moves to the caller.
func goodHandoff(t *Tracer) *Span {
	s := t.StartSpan("handoff")
	return s
}

type frame struct{ span *Span }

// goodStoreAway parks the span in a structure that outlives the call;
// whoever owns the frame owns the finish.
func goodStoreAway(t *Tracer, f *frame) {
	s := t.StartSpan("stored")
	f.span = s
}

// badEarlyReturn leaks on the error path: the span outlives the return
// with no deferred finish scheduled.
func badEarlyReturn(t *Tracer, fail bool) error {
	s := t.StartSpan("leaky")
	if fail {
		return errFail // want `returns while the span from .* is unfinished`
	}
	t.EndSpan(s)
	return nil
}

// badDiscard drops the span on the floor at the call site.
func badDiscard(t *Tracer) {
	t.StartSpan("dropped") // want `discards the span returned by StartSpan`
}

// badBlankDiscard binds the span to the blank identifier.
func badBlankDiscard(t *Tracer) {
	_ = t.StartPhase("blank") // want `discards the phase returned by StartPhase`
}

// badFallsOff never finishes the span on the implicit return.
func badFallsOff(t *Tracer) {
	s := t.StartSpan("open")
	work(s)
} // want `falls off the end while the span from .* is unfinished`

var bufPool = sync.Pool{New: func() any { return []byte(nil) }}

// goodPool pairs Get with a deferred Put.
func goodPool() {
	v := bufPool.Get().([]byte)
	defer bufPool.Put(v)
	consume(v)
}

// goodPoolHandoff returns the pooled object to the caller.
func goodPoolHandoff() []byte {
	v := bufPool.Get().([]byte)
	return v
}

// badPoolDiscard defeats the pool: the object can never come back.
func badPoolDiscard() {
	bufPool.Get() // want `discards the pooled object returned by Get`
}

// badPoolLeak takes an object and falls off the end without Put.
func badPoolLeak() {
	v := bufPool.Get().([]byte)
	consume(v)
} // want `falls off the end while the pooled object from .* is unfinished`
