// Package detorder is an extravet fixture: functions reachable from an
// extra:output root must not iterate maps in an order-dependent way.
// Each accepted idiom (key-collect-and-sort, filtered collect, scalar
// reduction, uniform-constant early return, keyed rebuild, clearing)
// appears once as a clean case, alongside flagged order-dependent loops
// and an unreachable function that is exempt.
package detorder

import (
	"fmt"
	"io"
	"sort"
)

// Names lists the map's keys deterministically.
//
// extra:output
func Names(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Filtered collects a subset of keys; the filter changes which keys are
// kept, never their sorted order.
//
// extra:output
func Filtered(m map[string]int) []string {
	var out []string
	for k := range m {
		if k != "" {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Max is a pure scalar fold.
//
// extra:output
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Has short-circuits with the same constant from every iteration.
//
// extra:output
func Has(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// Rebuild writes each iteration to a distinct key of the result.
//
// extra:output
func Rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// Clear deletes every listed key.
//
// extra:output
func Clear(m, drop map[string]int) {
	for k := range drop {
		delete(m, k)
	}
}

// BadDump emits entries in map order.
//
// extra:output
func BadDump(m map[string]int, emit func(string)) {
	for k := range m { // want `order is not fixed`
		emit(k)
	}
}

// First returns whichever key iteration happens to visit first.
//
// extra:output
func First(m map[string]int) string {
	for k := range m { // want `order is not fixed`
		return k
	}
	return ""
}

// helper is not a root itself, but Report reaches it.
func helper(m map[string]int, emit func(string)) {
	for k := range m { // want `order is not fixed`
		emit(k)
	}
}

// Report is the root that makes helper's iteration user-visible.
//
// extra:output
func Report(m map[string]int, emit func(string)) {
	helper(m, emit)
}

// BadExport renders a text exposition in map order — the regression
// class the Prometheus and Chrome trace exporters must avoid: two
// scrapes of the same state would produce different documents.
//
// extra:output
func BadExport(w io.Writer, m map[string]uint64) {
	for k, v := range m { // want `order is not fixed`
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

// Export is the accepted exporter shape: collect the metric names, sort
// them, then render in that fixed order.
//
// extra:output
func Export(w io.Writer, m map[string]uint64) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

// internalScratch is reachable from no output root, so its map-order
// dependence is none of detorder's business.
func internalScratch(m map[string]int, emit func(string)) {
	for k := range m {
		emit(k)
	}
}

var _ = internalScratch
