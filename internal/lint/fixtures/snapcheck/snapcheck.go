// Package snapcheck is an extravet fixture reproducing the engine's
// pinned-read shape: a DB with the commit/statement lock split, a
// snapshottable version-bearing store, and a BindSnapshot pin point.
// extra:snapshot roots must stay read-only, lock-free (beyond the
// shared pin) and snapshot-bound; the bad fixtures each break one of
// those in a different way.
package snapcheck

import (
	"sync"
	"sync/atomic"
)

// Snap is an immutable snapshot; reads through it are always legal.
type Snap struct{ vars map[string]int }

func (sn *Snap) Get(name string) int { return sn.vars[name] }

// Store is version-bearing and snapshottable, so live reads outside
// Snapshot/Version/Pool are flagged in snapshot context.
type Store struct {
	version atomic.Uint64
	vars    map[string]int
}

func (s *Store) bump() { s.version.Add(1) }

// Snapshot pins the current state.
func (s *Store) Snapshot() *Snap { return &Snap{vars: s.vars} }

// Version reads the counter (allowlisted: versioned caches key on it).
func (s *Store) Version() uint64 { return s.version.Load() }

// Get reads live state; illegal from snapshot context.
func (s *Store) Get(name string) int { return s.vars[name] }

// Set mutates live state.
func (s *Store) Set(name string, v int) {
	s.bump()
	s.vars[name] = v
}

type DB struct {
	wmu   sync.Mutex   // extra:lock db.wmu
	mu    sync.RWMutex // extra:lock db.mu
	store *Store
}

// BindSnapshot opens the pin window; its callers are the roots the
// analyzer floods from.
func (d *DB) BindSnapshot() *Snap { return d.store.Snapshot() }

// goodRead is the runReadStmt shape: shared pin, bind, read the bound
// snapshot. Clean.
//
// extra:acquires db.mu.R
// extra:snapshot
func (d *DB) goodRead() int {
	d.mu.RLock()
	sn := d.BindSnapshot()
	d.mu.RUnlock()
	return sn.Get("k")
}

// goodDump pins via Store.Snapshot directly (the Dump shape). Clean.
//
// extra:snapshot
func (d *DB) goodDump() int {
	sn := d.store.Snapshot()
	return sn.Get("k")
}

// writeLocked is write context by annotation; reached from a root it is
// a boundary and the edge is the violation.
//
// extra:requires db.wmu.W
func (d *DB) writeLocked() { d.store.Set("k", 1) }

// publish is a publication point by annotation.
//
// extra:mutates
func (d *DB) publish() { d.store.Set("k", 2) }

// badLocksCommit serializes the pinned read behind writers.
//
// extra:snapshot
func (d *DB) badLocksCommit() {
	sn := d.BindSnapshot()
	_ = sn
	d.wmu.Lock() // want `acquires db.wmu.W in snapshot context`
	d.wmu.Unlock()
}

// badExclusive upgrades to the exclusive statement lock mid-read.
//
// extra:snapshot
func (d *DB) badExclusive() {
	sn := d.BindSnapshot()
	_ = sn
	d.mu.Lock() // want `acquires db.mu.W in snapshot context`
	d.mu.Unlock()
}

// badCallsWriter reaches write context through an annotated callee.
//
// extra:snapshot
func (d *DB) badCallsWriter() {
	sn := d.BindSnapshot()
	_ = sn
	d.writeLocked() // want `which needs db.wmu.W`
}

// badCallsMutator reaches a publication point.
//
// extra:snapshot
func (d *DB) badCallsMutator() {
	sn := d.BindSnapshot()
	_ = sn
	d.publish() // want `which publishes store mutations`
}

// scribble writes store state directly; reached only from a snapshot
// root, so the write is reported here, inside the pin window.
func scribble(s *Store) {
	s.vars["k"] = 3 // want `mutates store state in snapshot context`
}

// badMutates writes the store inside the pin window via a helper.
//
// extra:snapshot
func (d *DB) badMutates() {
	sn := d.BindSnapshot()
	_ = sn
	scribble(d.store)
}

// badLiveRead reads the live store instead of the bound snapshot — the
// stale-read bug MVCC exists to prevent.
//
// extra:snapshot
func (d *DB) badLiveRead() int {
	sn := d.BindSnapshot()
	_ = sn
	return d.store.Get("k") // want `on the live store from snapshot context`
}

// helperRead is only reachable from snapshot roots; the flood descends
// into unannotated helpers and reports the violation where it happens.
func (d *DB) helperRead() {
	d.wmu.Lock() // want `acquires db.wmu.W in snapshot context`
	d.wmu.Unlock()
}

// badViaHelper reaches the commit lock two calls deep.
//
// extra:snapshot
func (d *DB) badViaHelper() {
	sn := d.BindSnapshot()
	_ = sn
	d.helperRead()
}

// badUnannotatedBind pins without the annotation, dodging the check.
func (d *DB) badUnannotatedBind() int {
	sn := d.BindSnapshot() // want `binds a snapshot but is not annotated extra:snapshot`
	return sn.Get("k")
}

// staleSnapshot claims to be a pinned-read root but never pins.
//
// extra:snapshot
func (d *DB) staleSnapshot() {} // want `never binds or takes a store snapshot`
