package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCheck enforces the all-or-nothing rule for function-style
// atomics: once any access to a variable goes through sync/atomic
// (atomic.AddUint64(&x.f, 1), atomic.LoadInt64(&v), ...), every access
// everywhere must — a single plain load can observe a torn or stale
// value, and the race detector only catches the interleavings a test
// happens to produce. It also checks that 64-bit function-style atomics
// on struct fields are alignment-safe: on 32-bit platforms a uint64
// field is only guaranteed 8-byte aligned when every field before it
// keeps the offset 8-aligned (the typed atomic.Uint64/Int64 wrappers
// carry their own alignment and need no check — preferring them is the
// real fix for any finding here).
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "variables touched via sync/atomic must never be accessed with plain loads or stores",
	Run:  runAtomicCheck,
}

// atomicFns names the sync/atomic functions whose first argument is the
// address of the atomically accessed variable, with the bit width of
// the access.
var atomicFns = map[string]int{
	"AddInt32": 32, "AddInt64": 64, "AddUint32": 32, "AddUint64": 64, "AddUintptr": 0,
	"LoadInt32": 32, "LoadInt64": 64, "LoadUint32": 32, "LoadUint64": 64, "LoadUintptr": 0, "LoadPointer": 0,
	"StoreInt32": 32, "StoreInt64": 64, "StoreUint32": 32, "StoreUint64": 64, "StoreUintptr": 0, "StorePointer": 0,
	"SwapInt32": 32, "SwapInt64": 64, "SwapUint32": 32, "SwapUint64": 64, "SwapUintptr": 0,
	"CompareAndSwapInt32": 32, "CompareAndSwapInt64": 64,
	"CompareAndSwapUint32": 32, "CompareAndSwapUint64": 64, "CompareAndSwapUintptr": 0,
}

// isAtomicCall reports whether call is sync/atomic.<fn> and returns the
// access width.
func isAtomicCall(info *types.Info, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	width, ok := atomicFns[sel.Sel.Name]
	if !ok {
		return 0, false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "sync/atomic" {
			return width, true
		}
	}
	return 0, false
}

// atomicTarget resolves the &x argument of an atomic call to the
// variable object it addresses (a struct field or a package-level var).
func atomicTarget(info *types.Info, arg ast.Expr) types.Object {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	switch x := ast.Unparen(un.X).(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.Ident:
		return info.Uses[x]
	}
	return nil
}

func runAtomicCheck(pass *Pass) {
	prog := pass.Prog

	// Pass 1: collect every variable accessed through sync/atomic, and
	// remember the call sites inside atomic arguments so pass 2 does not
	// report the atomic accesses themselves.
	atomicVars := map[types.Object]ast.Node{} // var -> first atomic use
	inAtomicArg := map[ast.Node]bool{}        // &x expressions consumed by atomic calls
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				width, ok := isAtomicCall(pkg.Info, call)
				if !ok || len(call.Args) == 0 {
					return true
				}
				obj := atomicTarget(pkg.Info, call.Args[0])
				if obj == nil {
					return true
				}
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = call
				}
				inAtomicArg[ast.Unparen(call.Args[0])] = true
				if width == 64 {
					checkAlignment(pass, pkg, call, obj)
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: any other read or write of those variables is a plain
	// (racy) access.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				var obj types.Object
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if s := pkg.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
						obj = s.Obj()
					}
				case *ast.Ident:
					obj = pkg.Info.Uses[x]
				}
				if obj == nil {
					return true
				}
				if _, isAtomic := atomicVars[obj]; !isAtomic {
					return true
				}
				if plainAccess(stack) {
					pass.Reportf(n.Pos(), "plain access to %s, which is written with sync/atomic elsewhere; use atomic.Load/Store (or an atomic.%s field)", obj.Name(), typedAtomicFor(obj))
				}
				return false // don't descend into the selector's parts
			})
		}
	}
}

// plainAccess reports whether the node at the top of the stack is a
// genuine value read/write rather than part of an atomic call argument
// (&x passed to sync/atomic) or a bare &x used to pass the address on.
func plainAccess(stack []ast.Node) bool {
	n := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.UnaryExpr:
			if p.Op.String() == "&" && ast.Unparen(p.X) == n {
				// Address-taken, not a value access. The atomic call
				// case is the common one; any other escape of the
				// address is beyond a lexical checker.
				return false
			}
			return true
		case *ast.SelectorExpr, *ast.ParenExpr:
			n = stack[i].(ast.Node)
			continue
		default:
			return true
		}
	}
	return true
}

// typedAtomicFor suggests the typed replacement for a variable's type.
func typedAtomicFor(obj types.Object) string {
	t := obj.Type().Underlying()
	if b, ok := t.(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		}
	}
	return "Uint64"
}

// checkAlignment reports 64-bit function-style atomics on struct fields
// whose offset is not 8-aligned under 32-bit layout rules.
func checkAlignment(pass *Pass, pkg *Package, call *ast.CallExpr, obj types.Object) {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	// Find the struct type declaring the field.
	for _, f := range pkg.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || found {
				return !found
			}
			var fields []*types.Var
			idx := -1
			for _, fl := range st.Fields.List {
				for _, id := range fl.Names {
					fo, _ := pkg.Info.Defs[id].(*types.Var)
					if fo == nil {
						continue
					}
					if fo == v {
						idx = len(fields)
					}
					fields = append(fields, fo)
				}
			}
			if idx < 0 {
				return true
			}
			found = true
			sizes := types.SizesFor("gc", "386")
			offsets := sizes.Offsetsof(fields)
			if offsets[idx]%8 != 0 {
				pass.Reportf(call.Pos(), "64-bit atomic access to field %s at 32-bit offset %d is not guaranteed 8-byte aligned; move it first in the struct or use atomic.%s",
					v.Name(), offsets[idx], typedAtomicFor(v))
			}
			return false
		})
		if found {
			return
		}
	}
}
