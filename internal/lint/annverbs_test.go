package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Every extra: verb the annotation parser understands must be consumed
// by at least one analyzer — an orphaned verb is vocabulary rot: code
// carries an annotation that silently checks nothing. The test parses
// parseAnnotations' switch to recover the verb → Annotations-field
// mapping, then requires each field to be read (as Ann.<Field>) in some
// analyzer file other than lint.go itself.
func TestAnnotationVerbsAllConsumed(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "lint.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	// verb -> Annotations field assigned in its case body.
	verbField := map[string]string{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "parseAnnotations" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			var verbs []string
			for _, e := range cc.List {
				if lit, ok := e.(*ast.BasicLit); ok {
					verbs = append(verbs, strings.Trim(lit.Value, `"`))
				}
			}
			var field string
			ast.Inspect(&ast.BlockStmt{List: cc.Body}, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && field == "" {
					if sel, ok := as.Lhs[0].(*ast.SelectorExpr); ok {
						field = sel.Sel.Name
					}
				}
				return true
			})
			for _, v := range verbs {
				verbField[v] = field
			}
			return true
		})
	}
	if len(verbField) == 0 {
		t.Fatal("found no verbs in parseAnnotations; did the parser move?")
	}

	// Collect Ann.<Field> reads from every other file in the package.
	consumed := map[string]bool{}
	use := regexp.MustCompile(`\bAnn\.([A-Z][A-Za-z]*)`)
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == "lint.go" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(".", name))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range use.FindAllStringSubmatch(string(src), -1) {
			consumed[m[1]] = true
		}
	}

	for verb, field := range verbField {
		if field == "" {
			t.Errorf("verb extra:%s: could not find the Annotations field it sets", verb)
			continue
		}
		if !consumed[field] {
			t.Errorf("verb extra:%s sets Annotations.%s, but no analyzer reads Ann.%s — dead vocabulary", verb, field, field)
		}
	}
}
