package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck enforces the annotation-driven lock discipline of the
// engine's concurrency contract (DESIGN.md §7):
//
//   - a struct field of type sync.Mutex or sync.RWMutex becomes a named
//     lock with "// extra:lock <name>" on the field;
//   - "// extra:requires <name>.R|W" on a function means callers must
//     hold that lock at that mode (W satisfies R);
//   - "// extra:acquires <name>.R|W" on a function means it takes and
//     releases the lock itself, so calling it while the lock is held is
//     a self-deadlock (sync mutexes are not reentrant);
//   - "// extra:holds <name>.R|W" is acquires for functions that return
//     with the lock still held (lockStatements hands the unlock back to
//     the caller): the same reentrancy rule, plus the lock counts as
//     held for the rest of the calling function;
//   - "// extra:dispatch <name> <classifier>" marks a statement
//     dispatcher (extra's Session.runStmt): inside type-switch arms
//     whose statement kinds are write-classified by sema.ReadOnly, the
//     lock is known to be held exclusively — that is the PR 3 invariant
//     that the database layer classifies every statement before taking
//     a side of the RWMutex. Read-classified arms stay at the shared
//     mode, so a mutation reachable from such an arm is reported.
//
// The checker is flow-approximate: acquisitions are tracked in source
// order within one function body (Lock/RLock calls, calls to
// extra:acquires functions), releases by non-deferred Unlock/RUnlock.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "callers of extra:requires functions must hold the declared lock",
	Run:  runLockCheck,
}

// StmtClass classifies every EXCESS statement kind the way
// sema.ReadOnly does at run time: "read" statements run under the
// shared side of the DB statement lock, "write" statements under the
// exclusive side, and "mixed" statements (retrieve, which is read-only
// unless it has an into clause) are classified dynamically. The sema
// package's exhaustiveness test asserts this table matches
// sema.ReadOnly and covers every ast.Statement implementation, so the
// static and dynamic classifications cannot drift apart silently.
var StmtClass = map[string]string{
	"Retrieve":        "mixed",
	"Append":          "write",
	"Delete":          "write",
	"Replace":         "write",
	"SetStmt":         "write",
	"Execute":         "write",
	"DefineType":      "write",
	"DefineEnum":      "write",
	"DefineFunction":  "write",
	"DefineProcedure": "write",
	"DefineIndex":     "write",
	"Create":          "write",
	"Drop":            "write",
	"RangeDecl":       "write",
	"Grant":           "write",
	"Revoke":          "write",
}

const (
	modeNone = 0
	modeR    = 1
	modeW    = 2
)

// parseLockRef splits "db.mu.W" into ("db.mu", modeW).
func parseLockRef(s string) (string, int, bool) {
	i := strings.LastIndex(s, ".")
	if i < 0 {
		return "", 0, false
	}
	switch s[i+1:] {
	case "R":
		return s[:i], modeR, true
	case "W":
		return s[:i], modeW, true
	}
	return "", 0, false
}

// lockTable maps struct-field objects to declared lock names.
type lockTable map[types.Object]string

// buildLockTable scans struct declarations for extra:lock annotations.
func buildLockTable(prog *Program) lockTable {
	lt := lockTable{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					name := lockAnnotation(field.Doc)
					if name == "" {
						name = lockAnnotation(field.Comment)
					}
					if name == "" {
						continue
					}
					for _, id := range field.Names {
						if obj := pkg.Info.Defs[id]; obj != nil {
							lt[obj] = name
						}
					}
				}
				return true
			})
		}
	}
	return lt
}

func lockAnnotation(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(line, "extra:lock"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// resolveLockExpr maps the receiver of a Lock/Unlock call (e.g. the
// `db.mu` of `db.mu.RLock()`) to its declared lock name.
func resolveLockExpr(lt lockTable, info *types.Info, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if name, ok := lt[s.Obj()]; ok {
			return name, true
		}
	}
	return "", false
}

// lockEvent is one change to the held-locks state at a source position.
type lockEvent struct {
	pos  token.Pos
	lock string
	mode int // modeNone releases; otherwise sets the held mode
}

func runLockCheck(pass *Pass) {
	prog := pass.Prog
	lt := buildLockTable(prog)
	funcs := prog.Funcs()

	for _, fi := range funcs {
		if fi.Decl.Body == nil {
			continue
		}
		info := fi.Pkg.Info

		// Base modes from the function's own requirements.
		base := map[string]int{}
		for _, r := range fi.Ann.Requires {
			lock, mode, ok := parseLockRef(r)
			if !ok {
				pass.Reportf(fi.Decl.Pos(), "malformed extra:requires annotation %q (want <lock>.R or <lock>.W)", r)
				continue
			}
			if mode > base[lock] {
				base[lock] = mode
			}
		}

		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})

		// Collect acquisition/release events in source order.
		var events []lockEvent
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if lock, isLock := resolveLockExpr(lt, info, sel.X); isLock {
					switch sel.Sel.Name {
					case "Lock", "TryLock":
						// TryLock is treated as an acquisition: the analysis
						// is flow-insensitive, and code guarded by a failed
						// TryLock branch must not rely on the lock anyway.
						events = append(events, lockEvent{call.Pos(), lock, modeW})
					case "RLock", "TryRLock":
						events = append(events, lockEvent{call.Pos(), lock, modeR})
					case "Unlock", "RUnlock":
						if !deferred[call] {
							events = append(events, lockEvent{call.Pos(), lock, modeNone})
						}
					}
					return true
				}
			}
			if callee := StaticCallee(info, call); callee != nil {
				if ci := funcs[callee]; ci != nil {
					// Only holds-annotated callees leave the lock held;
					// acquires-annotated ones released it before returning.
					for _, a := range ci.Ann.Holds {
						if lock, mode, ok := parseLockRef(a); ok && !deferred[call] {
							events = append(events, lockEvent{call.End(), lock, mode})
						}
					}
				}
			}
			return true
		})

		// Statement-dispatch arms: write-classified arms hold the lock
		// exclusively for the span of the arm body.
		if len(fi.Ann.Dispatch) >= 1 {
			lock := fi.Ann.Dispatch[0]
			events = append(events, dispatchEvents(pass, fi, lock, base[lock])...)
		}

		sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

		heldAt := func(pos token.Pos, lock string) int {
			mode := base[lock]
			for _, ev := range events {
				if ev.pos >= pos || ev.lock != lock {
					continue
				}
				m := ev.mode
				if m < base[lock] {
					m = base[lock] // a release cannot drop below the floor
				}
				mode = m
			}
			return mode
		}

		// Check each static call against its callee's annotations.
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil {
				return true
			}
			ci := funcs[callee]
			if ci == nil {
				return true
			}
			for _, r := range ci.Ann.Requires {
				lock, mode, ok := parseLockRef(r)
				if !ok {
					continue
				}
				if held := heldAt(call.Pos(), lock); held < mode {
					pass.Reportf(call.Pos(), "call to %s requires %s.%s, but %s holds %s",
						callee.Name(), lock, modeName(mode), fi.Obj.Name(), heldName(held, lock))
				}
			}
			for _, a := range append(append([]string{}, ci.Ann.Acquires...), ci.Ann.Holds...) {
				lock, _, ok := parseLockRef(a)
				if !ok {
					continue
				}
				if held := heldAt(call.Pos(), lock); held > modeNone {
					pass.Reportf(call.Pos(), "call to %s acquires %s while %s already holds it (self-deadlock: sync locks are not reentrant)",
						callee.Name(), lock, fi.Obj.Name())
				}
			}
			return true
		})
	}
}

func modeName(m int) string {
	switch m {
	case modeR:
		return "R"
	case modeW:
		return "W"
	}
	return "nothing"
}

func heldName(m int, lock string) string {
	if m == modeNone {
		return "no lock"
	}
	return lock + "." + modeName(m)
}

// dispatchEvents implements the extra:dispatch annotation: inside
// type-switch arms over statement kinds that StmtClass marks "write",
// the statement lock is held exclusively (the database layer classified
// the statement and took the exclusive side before dispatching). It
// also cross-checks arm coverage against the classification table, so a
// new statement type cannot be dispatched without being classified.
func dispatchEvents(pass *Pass, fi *FuncInfo, lock string, baseMode int) []lockEvent {
	var events []lockEvent
	covered := map[string]bool{}
	sawSwitch := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		sawSwitch = true
		for _, stmt := range ts.Body.List {
			cc := stmt.(*ast.CaseClause)
			allWrite := len(cc.List) > 0
			for _, texpr := range cc.List {
				name := caseTypeName(texpr)
				covered[name] = true
				class, known := StmtClass[name]
				if !known {
					pass.Reportf(texpr.Pos(), "statement type %s is not classified in lint.StmtClass (update the table and sema.ReadOnly together)", name)
					allWrite = false
					continue
				}
				if class != "write" {
					allWrite = false
				}
			}
			if allWrite && len(cc.Body) > 0 {
				// Anchor at the case keyword, not the first body
				// statement: a call that IS the first statement must
				// still see the lock held.
				events = append(events,
					lockEvent{cc.Pos(), lock, modeW},
					lockEvent{cc.End(), lock, baseMode})
			}
		}
		return true
	})
	if sawSwitch {
		for name := range StmtClass {
			if !covered[name] {
				pass.Reportf(fi.Decl.Pos(), "statement dispatch in %s has no arm for classified statement type %s", fi.Obj.Name(), name)
			}
		}
	}
	return events
}

// caseTypeName extracts the bare type name of a type-switch case
// expression like *ast.Append.
func caseTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}
