// Package lint is the home of extravet, the engine's static-analysis
// suite. It provides a small go/analysis-style framework built entirely
// on the standard library (go/ast, go/types and `go list` export data —
// golang.org/x/tools is deliberately not a dependency) plus four
// analyzers that encode the engine's concurrency and determinism
// invariants:
//
//   - lockcheck: annotation-driven lock discipline for the DB's
//     readers-writer statement lock and the engine's side locks;
//   - atomiccheck: fields touched through sync/atomic must never be
//     accessed with plain loads or stores, and 64-bit function-style
//     atomics must be alignment-safe;
//   - detorder: user-visible output paths (dump, explain, catalog
//     listings, metrics snapshots, the store fsck) must not iterate a
//     map without establishing an order;
//   - verbump: every mutation of stored object/tuple state must be
//     paired with a Store.Version bump, so deref caches can never serve
//     stale data silently;
//   - walcheck: every function that publishes store state (calls
//     Store.Commit) must be annotated extra:mutates, must transitively
//     reach a WAL append (an extra:logs function), and must size its
//     record against wal.MaxRecord before the first mutation — the
//     no-rollback contract of DESIGN.md §13;
//   - snapcheck: functions annotated extra:snapshot open a pinned-read
//     window; nothing reachable from them may mutate the store, acquire
//     the commit lock (or the statement lock exclusively), or read the
//     live store instead of the bound snapshot;
//   - spanleak: trace span Start and sync.Pool Get must be paired with
//     EndSpan/EndPhase/Put on every return path, protecting the
//     zero-alloc tracing substrate and the executor pools.
//
// Analyzers run over a whole Program (every package of the main module
// in the dependency closure of the requested patterns), so facts like
// "this function transitively bumps the store version" cross package
// boundaries without a facts-serialization protocol.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string // command-line name, e.g. "lockcheck"
	Doc  string // one-line description
	Run  func(*Pass)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass gives an analyzer the loaded program and a report sink.
type Pass struct {
	Prog   *Program
	Name   string
	sink   func(Diagnostic)
	report map[*Package]bool // packages whose findings are reported
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.sink(Diagnostic{Pos: pos, Analyzer: p.Name, Message: fmt.Sprintf(format, args...)})
}

// Package is one source-loaded, type-checked package of the program.
type Package struct {
	Path  string
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Program is the unit of analysis: every main-module package in the
// dependency closure of the load patterns, type-checked from source.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // dependency order (dependencies first)

	funcs map[*types.Func]*FuncInfo
	byPkg map[*types.Package]*Package
}

// FuncInfo pairs a function object with its declaration and parsed
// annotations.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Ann  Annotations
}

// Annotations are the extra: markers parsed from a doc comment. Each is
// a whitespace-split argument list; e.g. "// extra:requires db.mu.W"
// yields Requires == []string{"db.mu.W"}.
type Annotations struct {
	Requires []string // extra:requires <lock>.<R|W> — caller must hold
	Acquires []string // extra:acquires <lock>.<R|W> — taken AND released inside
	Holds    []string // extra:holds <lock>.<R|W> — taken inside, still held on return
	Bumps    bool     // extra:bumps — guarantees a store-version bump
	Output   bool     // extra:output — root of a user-visible output path
	Dispatch []string // extra:dispatch <lock> <classifier> — stmt dispatch
	Logs     bool     // extra:logs — sizes and/or appends the WAL record
	Mutates  bool     // extra:mutates — publishes store state (Store.Commit)
	Snapshot bool     // extra:snapshot — root of a pinned-read window
}

// parseAnnotations extracts extra: markers from a comment group.
func parseAnnotations(doc *ast.CommentGroup) Annotations {
	var a Annotations
	if doc == nil {
		return a
	}
	for _, c := range doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(line, "extra:") {
			continue
		}
		fields := strings.Fields(line)
		verb := strings.TrimPrefix(fields[0], "extra:")
		args := fields[1:]
		switch verb {
		case "requires":
			a.Requires = append(a.Requires, args...)
		case "acquires":
			a.Acquires = append(a.Acquires, args...)
		case "holds":
			a.Holds = append(a.Holds, args...)
		case "bumps":
			a.Bumps = true
		case "output":
			a.Output = true
		case "dispatch":
			a.Dispatch = args
		case "logs":
			a.Logs = true
		case "mutates":
			a.Mutates = true
		case "snapshot":
			a.Snapshot = true
		}
	}
	return a
}

// Funcs returns the program-wide function table, built on first use.
func (prog *Program) Funcs() map[*types.Func]*FuncInfo {
	if prog.funcs != nil {
		return prog.funcs
	}
	prog.funcs = make(map[*types.Func]*FuncInfo)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				prog.funcs[obj] = &FuncInfo{
					Obj:  obj,
					Decl: fd,
					Pkg:  pkg,
					Ann:  parseAnnotations(fd.Doc),
				}
			}
		}
	}
	return prog.funcs
}

// PackageOf returns the loaded package owning a types.Package, or nil.
func (prog *Program) PackageOf(tp *types.Package) *Package {
	if prog.byPkg == nil {
		prog.byPkg = make(map[*types.Package]*Package, len(prog.Pkgs))
		for _, p := range prog.Pkgs {
			prog.byPkg[p.Types] = p
		}
	}
	return prog.byPkg[tp]
}

// StaticCallee resolves a call expression to the named function or
// method it invokes, or nil for dynamic calls (function values,
// interface dispatch) and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	if f == nil {
		f, _ = info.Defs[id].(*types.Func)
	}
	return f
}

// CallGraph maps every declared function to the functions it calls
// (static calls only, including calls made inside function literals
// nested in its body — closures are attributed to the enclosing
// declaration).
func (prog *Program) CallGraph() map[*types.Func][]*types.Func {
	funcs := prog.Funcs()
	g := make(map[*types.Func][]*types.Func, len(funcs))
	for obj, fi := range funcs {
		if fi.Decl.Body == nil {
			continue
		}
		var out []*types.Func
		seen := map[*types.Func]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := StaticCallee(fi.Pkg.Info, call); callee != nil && !seen[callee] {
				seen[callee] = true
				out = append(out, callee)
			}
			return true
		})
		g[obj] = out
	}
	return g
}

// Transitive computes the set of functions from which a function in
// `hits` is reachable through the call graph — "does F transitively
// call something that X?" for every F at once. It flood-fills the
// reversed graph from the hit set, which handles call cycles (mutual
// recursion through eval) without the unsound "visiting means no"
// shortcut a naive memoized DFS would take.
func Transitive(g map[*types.Func][]*types.Func, hits func(*types.Func) bool) map[*types.Func]bool {
	rev := make(map[*types.Func][]*types.Func)
	for f, callees := range g {
		for _, c := range callees {
			rev[c] = append(rev[c], f)
		}
	}
	out := make(map[*types.Func]bool)
	var queue []*types.Func
	add := func(f *types.Func) {
		if !out[f] {
			out[f] = true
			queue = append(queue, f)
		}
	}
	for f := range g {
		if hits(f) {
			add(f)
		}
	}
	for f := range rev { // hit nodes that only appear as callees
		if hits(f) {
			add(f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, caller := range rev[f] {
			add(caller)
		}
	}
	return out
}

// AnalyzerTime is the wall time one analyzer took over the program,
// for the CI budget report.
type AnalyzerTime struct {
	Name    string
	Elapsed time.Duration
}

// Run executes the analyzers over the program, reporting diagnostics
// whose position lies in one of the packages matched by reportPaths
// (all loaded packages when reportPaths is nil). Diagnostics suppressed
// with a "//extravet:ignore <name>" comment on the same or preceding
// line are dropped. Results come back sorted by file, line and column,
// with per-analyzer wall times alongside.
func Run(prog *Program, analyzers []*Analyzer, reportPaths []string) ([]Diagnostic, []AnalyzerTime) {
	reportAll := reportPaths == nil
	report := make(map[string]bool, len(reportPaths))
	for _, p := range reportPaths {
		report[p] = true
	}
	// Positions eligible for reporting: files of reported packages.
	inScope := make(map[*token.File]*Package)
	ignores := make(map[*token.File]map[int]map[string]bool) // file -> line -> analyzers
	for _, pkg := range prog.Pkgs {
		if !reportAll && !report[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			tf := prog.Fset.File(f.Pos())
			inScope[tf] = pkg
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "extravet:ignore") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "extravet:ignore"))
					line := prog.Fset.Position(c.Pos()).Line
					m := ignores[tf]
					if m == nil {
						m = make(map[int]map[string]bool)
						ignores[tf] = m
					}
					set := map[string]bool{}
					for _, name := range fields {
						set[name] = true
						if strings.HasPrefix(name, "(") {
							break // rest is a justification comment
						}
					}
					m[line] = set
				}
			}
		}
	}
	var out []Diagnostic
	var times []AnalyzerTime
	seen := map[string]bool{}
	for _, a := range analyzers {
		start := time.Now()
		pass := &Pass{
			Prog: prog,
			Name: a.Name,
			sink: func(d Diagnostic) {
				tf := prog.Fset.File(d.Pos)
				pkg, ok := inScope[tf]
				if !ok || pkg == nil {
					return
				}
				line := prog.Fset.Position(d.Pos).Line
				if m := ignores[tf]; m != nil {
					for _, l := range []int{line, line - 1} {
						if set := m[l]; set != nil && (set[d.Analyzer] || len(set) == 0) {
							return
						}
					}
				}
				key := fmt.Sprintf("%s|%s|%s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				out = append(out, d)
			},
		}
		a.Run(pass)
		times = append(times, AnalyzerTime{Name: a.Name, Elapsed: time.Since(start)})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := prog.Fset.Position(out[i].Pos), prog.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, times
}

// Analyzers returns the full extravet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCheck, AtomicCheck, DetOrder, VerBump, WalCheck, SnapCheck, SpanLeak}
}
