package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SpanLeak enforces the pairing discipline of the engine's two
// recycled-resource families:
//
//   - trace spans: a value obtained from StartSpan/StartSpanAt/
//     StartPhase must reach EndSpan/EndPhase before every return —
//     an unfinished span survives in the statement's Active buffer and
//     skews the started/finished leak counters PR 6 added by hand;
//   - sync.Pool objects: a value obtained from Pool.Get must reach
//     Pool.Put (or escape to the caller) — a dropped object silently
//     defeats the zero-alloc contract under load.
//
// The analysis is the suite's usual source-order approximation rather
// than a true CFG: per tracked variable it orders acquire events
// (assignment from a Start/Get call), release events (the variable
// passed to EndSpan/EndPhase/Put, including inside deferred calls and
// deferred closures) and handoffs (the variable returned or stored
// away, which transfers the obligation to whoever receives it), then
// reports any variable still held at a return statement — the early
// error return between Start and End is exactly the leak shape. A
// Start/Get whose result is discarded outright is reported at the
// call. Function literals are separate analysis units: their returns
// only discharge their own acquisitions, but a release they perform on
// an outer variable (the deferred-cleanup closure idiom) still counts
// for the enclosing function.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "trace span Start and sync.Pool Get must be paired with End/Put on every return path",
	Run:  runSpanLeak,
}

var spanStarts = map[string]string{
	"StartSpan": "span", "StartSpanAt": "span", "StartPhase": "phase",
}
var spanEnds = map[string]bool{"EndSpan": true, "EndPhase": true}

func runSpanLeak(pass *Pass) {
	for _, fi := range pass.Prog.Funcs() {
		if fi.Decl.Body == nil {
			continue
		}
		checkLeakUnit(pass, fi.Pkg.Info, fi.Obj.Name(), fi.Decl.Body, fi.Decl.Type.Results)
	}
}

// leakEvent is one change to a tracked resource's state.
type leakEvent struct {
	pos  token.Pos
	kind int // 0 acquire, 1 release, 2 deferred release
	what string
}

const (
	evAcquire = 0
	evRelease = 1
	evDefer   = 2
)

// checkLeakUnit analyzes one function (or function literal) body.
// Nested literals are queued as their own units; their bodies still
// contribute release events to this unit (callback and deferred-closure
// cleanup), but not acquires or returns.
func checkLeakUnit(pass *Pass, info *types.Info, name string, body *ast.BlockStmt, results *ast.FieldList) {
	events := map[types.Object][]leakEvent{}

	// isAcquire classifies a call expression; what is "" when it is not
	// an acquire.
	isAcquire := func(call *ast.CallExpr) string {
		f := StaticCallee(info, call)
		if f == nil {
			return ""
		}
		if w, ok := spanStarts[f.Name()]; ok {
			return w
		}
		if f.Name() == "Get" && isPoolMethod(f) {
			return "pooled object"
		}
		return ""
	}
	// acquireIn unwraps the value-producing expression of an assignment
	// right-hand side down to an acquire call (type assertions on
	// Pool.Get results included).
	acquireIn := func(e ast.Expr) (*ast.CallExpr, string) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.TypeAssertExpr:
				e = x.X
			case *ast.CallExpr:
				if w := isAcquire(x); w != "" {
					return x, w
				}
				return nil, ""
			default:
				return nil, ""
			}
		}
	}

	var nested []*ast.FuncLit
	deferredCalls := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				deferredCalls[lit] = true
			}
		}
		return true
	})

	// inDeferredClosure reports whether a release inside a function
	// literal runs at unit exit (the literal is the operand of a defer).
	record := func(obj types.Object, ev leakEvent) {
		events[obj] = append(events[obj], ev)
	}

	var returns []*ast.ReturnStmt
	var walk func(n ast.Node, inLit, litDeferred bool)
	walk = func(root ast.Node, inLit, litDeferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if x.Pos() == root.Pos() {
					return true // the literal we were asked to walk
				}
				nested = append(nested, x)
				walk(x.Body, true, litDeferred || deferredCalls[x])
				return false
			case *ast.AssignStmt:
				// A tracked resource appearing on a right-hand side is an
				// alias or a store-away: the obligation moves with the
				// value (s := v.(*State); x.span = sp), so the original
				// binding is released here.
				for _, rhs := range x.Rhs {
					if c, _ := acquireIn(rhs); c != nil {
						continue // the acquire itself, handled below
					}
					ast.Inspect(rhs, func(n ast.Node) bool {
						if id, ok := n.(*ast.Ident); ok {
							if obj := objOf(info, id); obj != nil {
								record(obj, leakEvent{x.Pos(), evRelease, ""})
							}
						}
						return true
					})
				}
				for i, rhs := range x.Rhs {
					call, what := acquireIn(rhs)
					if call == nil {
						continue
					}
					if inLit {
						continue // the literal's own unit tracks it
					}
					var lhs ast.Expr
					if len(x.Lhs) == len(x.Rhs) {
						lhs = x.Lhs[i]
					} else if i == 0 {
						lhs = x.Lhs[0]
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue // stored straight into a structure: handoff
					}
					if id.Name == "_" {
						pass.Reportf(call.Pos(), "%s discards the %s returned by %s; it can never be finished or returned to the pool", name, what, calleeName(info, call))
						continue
					}
					obj := objOf(info, id)
					if obj != nil {
						record(obj, leakEvent{call.Pos(), evAcquire, what})
					}
				}
			case *ast.ExprStmt:
				if call, what := acquireIn(x.X); call != nil && !inLit {
					pass.Reportf(call.Pos(), "%s discards the %s returned by %s; it can never be finished or returned to the pool", name, what, calleeName(info, call))
				}
			case *ast.CallExpr:
				f := StaticCallee(info, x)
				if f == nil {
					return true
				}
				if !spanEnds[f.Name()] && !(f.Name() == "Put" && isPoolMethod(f)) {
					return true
				}
				kind := evRelease
				if deferredCalls[x] || litDeferred {
					kind = evDefer
				}
				for _, arg := range x.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := objOf(info, id); obj != nil {
							record(obj, leakEvent{x.Pos(), kind, ""})
						}
					}
				}
			case *ast.ReturnStmt:
				if !inLit {
					returns = append(returns, x)
				}
			}
			return true
		})
	}
	walk(body, false, false)

	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	}

	// heldAt reports whether obj is held just before pos: its last
	// event before pos is an acquire with no deferred release scheduled
	// after it.
	heldAt := func(evs []leakEvent, pos token.Pos) (leakEvent, bool) {
		var last leakEvent
		lastSet := false
		deferAfter := token.NoPos
		for _, ev := range evs {
			if ev.pos >= pos {
				break
			}
			if ev.kind == evDefer {
				deferAfter = ev.pos
				continue
			}
			last, lastSet = ev, true
		}
		if !lastSet || last.kind != evAcquire {
			return leakEvent{}, false
		}
		if deferAfter.IsValid() && deferAfter > last.pos {
			return leakEvent{}, false
		}
		return last, true
	}

	check := func(pos token.Pos, handoff map[types.Object]bool, where string) {
		for obj, evs := range events {
			if handoff[obj] {
				continue
			}
			if acq, held := heldAt(evs, pos); held {
				pass.Reportf(pos, "%s %s while the %s from %s is unfinished; release it with End/Put (or defer) on this path too", name, where, acq.what, pass.Prog.Fset.Position(acq.pos))
			}
		}
	}

	for _, ret := range returns {
		// Returning the resource hands the obligation to the caller.
		handoff := map[types.Object]bool{}
		for _, e := range ret.Results {
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						handoff[obj] = true
					}
				}
				return true
			})
		}
		check(ret.Pos(), handoff, "returns")
	}
	// A function without results can fall off the end of its body.
	if results == nil || len(results.List) == 0 {
		if n := len(body.List); n == 0 || !isTerminal(body.List[n-1]) {
			check(body.End(), nil, "falls off the end")
		}
	}

	for _, lit := range nested {
		checkLeakUnit(pass, info, name+" (func literal)", lit.Body, lit.Type.Results)
	}
}

// isTerminal reports whether a function body's last statement already
// transfers control (so there is no implicit fallthrough return to
// check).
func isTerminal(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil // for {} never falls through
	}
	return false
}

func isPoolMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if f := StaticCallee(info, call); f != nil {
		return f.Name()
	}
	return "the call"
}
