package adt

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
	"repro/internal/value"
)

func TestBuiltinsPresent(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) != 2 || names[0] != "Complex" || names[1] != "Date" {
		t.Fatalf("builtins: %v", names)
	}
	c, ok := r.Lookup("Date")
	if !ok {
		t.Fatal("Date missing")
	}
	fns := c.FuncNames()
	want := []string{"add_days", "date", "day", "diff_days", "month", "year"}
	if strings.Join(fns, ",") != strings.Join(want, ",") {
		t.Errorf("Date functions: %v", fns)
	}
}

func TestDefineAndOverload(t *testing.T) {
	r := NewRegistry()
	c, err := r.Define("Point")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Define("Point"); err == nil {
		t.Error("duplicate ADT accepted")
	}
	mk := func(params ...types.Type) *Func {
		return &Func{Name: "dist", Params: params, Result: types.Float8,
			Impl: func([]value.Value) (value.Value, error) { return value.NewFloat(0), nil }}
	}
	if err := r.RegisterFunc("Point", mk(c.Type, c.Type)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFunc("Point", mk(c.Type)); err != nil {
		t.Fatal(err) // different arity: fine
	}
	if err := r.RegisterFunc("Point", mk(c.Type, c.Type)); err == nil {
		t.Error("identical signature accepted twice")
	}
	if err := r.RegisterFunc("NoSuch", mk(c.Type)); err == nil {
		t.Error("function on unknown ADT accepted")
	}
}

func TestOperatorRegistrationRules(t *testing.T) {
	r := NewRegistry()
	c, _ := r.Define("Vec")
	unary := &Func{Name: "neg", Params: []types.Type{c.Type}, Result: c.Type,
		Impl: func(a []value.Value) (value.Value, error) { return a[0], nil }}
	binary := &Func{Name: "plus", Params: []types.Type{c.Type, c.Type}, Result: c.Type,
		Impl: func(a []value.Value) (value.Value, error) { return a[0], nil }}
	ternary := &Func{Name: "fma", Params: []types.Type{c.Type, c.Type, c.Type}, Result: c.Type,
		Impl: func(a []value.Value) (value.Value, error) { return a[0], nil }}
	for _, f := range []*Func{unary, binary, ternary} {
		if err := r.RegisterFunc("Vec", f); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterOperator("Vec", Operator{Symbol: "~", Prefix: true, Precedence: 7, Fn: unary}); err != nil {
		t.Errorf("prefix op: %v", err)
	}
	if err := r.RegisterOperator("Vec", Operator{Symbol: "<+>", Precedence: 5, Fn: binary}); err != nil {
		t.Errorf("infix op: %v", err)
	}
	// Three or more arguments cannot be operators (paper rule).
	if err := r.RegisterOperator("Vec", Operator{Symbol: "@@", Precedence: 5, Fn: ternary}); err == nil {
		t.Error("ternary operator accepted")
	}
	// Precedence must be in range.
	if err := r.RegisterOperator("Vec", Operator{Symbol: "!!", Precedence: 9, Fn: binary}); err == nil {
		t.Error("precedence 9 accepted")
	}
	// Overloaded-within-dbclass functions cannot be operators.
	over1 := &Func{Name: "amb", Params: []types.Type{c.Type}, Result: c.Type,
		Impl: func(a []value.Value) (value.Value, error) { return a[0], nil }}
	over2 := &Func{Name: "amb", Params: []types.Type{c.Type, c.Type}, Result: c.Type,
		Impl: func(a []value.Value) (value.Value, error) { return a[0], nil }}
	r.RegisterFunc("Vec", over1)
	r.RegisterFunc("Vec", over2)
	if err := r.RegisterOperator("Vec", Operator{Symbol: "%%", Precedence: 5, Fn: over1}); err == nil {
		t.Error("overloaded function registered as operator")
	}
	// OperatorInfo reports parse-time properties.
	prec, right, prefix, ok := r.OperatorInfo("<+>")
	if !ok || prec != 5 || right || prefix {
		t.Errorf("OperatorInfo: %d %v %v %v", prec, right, prefix, ok)
	}
	if _, _, _, ok := r.OperatorInfo("@#$"); ok {
		t.Error("unknown operator reported")
	}
}

func TestResolveOverloads(t *testing.T) {
	r := NewRegistry()
	ct, _ := r.Type("Complex")
	// Exact match wins over widening.
	fn, err := r.ResolveOperator("+", []types.Type{ct, ct})
	if err != nil || fn.Name != "Add" {
		t.Fatalf("resolve +: %v %v", fn, err)
	}
	if _, err := r.ResolveOperator("+", []types.Type{ct, types.Int4}); err == nil {
		t.Error("mismatched operand accepted")
	}
	fn, err = r.ResolveAnyFunc("year", []types.Type{&types.ADT{Name: "Date"}})
	if err != nil || fn.Result != types.Int4 {
		t.Fatalf("ResolveAnyFunc year: %v", err)
	}
	if _, err := r.ResolveAnyFunc("nonesuch", nil); err == nil {
		t.Error("unknown function resolved")
	}
	if _, err := r.ResolveFunc("Date", "Magnitude", []types.Type{&types.ADT{Name: "Date"}}); err == nil {
		t.Error("cross-class member resolved")
	}
}

func TestDateSemantics(t *testing.T) {
	d1, err := NewDate(1987, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d1.String() != "12/07/1987" {
		t.Errorf("display: %s", d1)
	}
	if _, err := NewDate(1987, 2, 30); err == nil {
		t.Error("Feb 30 accepted")
	}
	if _, err := NewDate(1987, 13, 1); err == nil {
		t.Error("month 13 accepted")
	}
	if _, err := NewDate(2000, 2, 29); err != nil {
		t.Error("leap day rejected (2000 is a leap year)")
	}
	if _, err := NewDate(1900, 2, 29); err == nil {
		t.Error("1900-02-29 accepted (not a leap year)")
	}
	d2, _ := ParseDate("01/01/1988")
	c := d1.(value.ADTVal).Rep.(DateRep).CompareRep(d2.(value.ADTVal).Rep)
	if c >= 0 {
		t.Error("date ordering wrong")
	}
	if _, err := ParseDate("notadate"); err == nil {
		t.Error("bad literal accepted")
	}
}

func TestDateArithmetic(t *testing.T) {
	r := NewRegistry()
	d, _ := NewDate(1987, 12, 30)
	add, err := r.ResolveAnyFunc("add_days", []types.Type{&types.ADT{Name: "Date"}, types.Int4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := add.Impl([]value.Value{d, value.NewInt(5)})
	if err != nil || out.String() != "01/04/1988" {
		t.Fatalf("add_days: %s %v", out, err)
	}
	// Negative day counts walk backwards across month boundaries.
	out, err = add.Impl([]value.Value{d, value.NewInt(-30)})
	if err != nil || out.String() != "11/30/1987" {
		t.Fatalf("add_days back: %s %v", out, err)
	}
	diff, _ := r.ResolveAnyFunc("diff_days", []types.Type{&types.ADT{Name: "Date"}, &types.ADT{Name: "Date"}})
	d2, _ := NewDate(1988, 1, 4)
	n, err := diff.Impl([]value.Value{d2, d})
	if err != nil || n.(value.Int).V != 5 {
		t.Fatalf("diff_days: %s %v", n, err)
	}
}

// Property: add_days(d, n) then add_days(result, -n) returns d.
func TestDateAddInverseProperty(t *testing.T) {
	r := NewRegistry()
	add, _ := r.ResolveAnyFunc("add_days", []types.Type{&types.ADT{Name: "Date"}, types.Int4})
	f := func(day uint16, n int16) bool {
		d, err := NewDate(2000, 1, 1)
		if err != nil {
			return false
		}
		fwd, err := add.Impl([]value.Value{d, value.NewInt(int64(n))})
		if err != nil {
			return false
		}
		back, err := add.Impl([]value.Value{fwd, value.NewInt(-int64(n))})
		if err != nil {
			return false
		}
		return value.Equal(d, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComplexSemantics(t *testing.T) {
	r := NewRegistry()
	a := NewComplex(1, 2)
	b := NewComplex(3, -1)
	ct, _ := r.Type("Complex")
	mul, err := r.ResolveFunc("Complex", "Multiply", []types.Type{ct, ct})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mul.Impl([]value.Value{a, b})
	if out.String() != "5+5i" {
		t.Errorf("multiply: %s", out)
	}
	sub, _ := r.ResolveOperator("-", []types.Type{ct, ct})
	out, _ = sub.Impl([]value.Value{a, b})
	if out.String() != "-2+3i" {
		t.Errorf("subtract: %s", out)
	}
	mag, _ := r.ResolveFunc("Complex", "Magnitude", []types.Type{ct})
	out, _ = mag.Impl([]value.Value{NewComplex(3, 4)})
	if out.(value.Float).V != 5 {
		t.Errorf("magnitude: %s", out)
	}
	if !value.Equal(NewComplex(1, 2), NewComplex(1, 2)) {
		t.Error("complex equality")
	}
	if NewComplex(0, -1).String() != "0-1i" {
		t.Errorf("negative imaginary display: %s", NewComplex(0, -1))
	}
}

func TestSetFuncs(t *testing.T) {
	r := NewRegistry()
	sf := &SetFunc{
		Name:       "second",
		Constraint: func(e types.Type) bool { return e != nil && e.Kind().IsNumeric() },
		Result:     func(e types.Type) types.Type { return e },
		Impl: func(es []value.Value) (value.Value, error) {
			if len(es) < 2 {
				return value.Null{}, nil
			}
			return es[1], nil
		},
	}
	if err := r.RegisterSetFunc(sf); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterSetFunc(sf); err == nil {
		t.Error("duplicate set function accepted")
	}
	if !r.HasSetFunc("second") || r.HasSetFunc("third") {
		t.Error("HasSetFunc wrong")
	}
	if _, ok := r.SetFuncFor("second", types.Int4); !ok {
		t.Error("constraint rejected int4")
	}
	if _, ok := r.SetFuncFor("second", types.Varchar); ok {
		t.Error("constraint accepted varchar")
	}
}
