package adt

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/value"
)

// DateRep is the internal representation of the built-in Date ADT used in
// Figure 1 of the paper ("birthday: Date", "create Today: Date"). It is
// stored as a civil date and ordered chronologically.
type DateRep struct {
	Year  int
	Month int
	Day   int
}

// String renders the date in the paper's mm/dd/yyyy style.
func (d DateRep) String() string { return fmt.Sprintf("%02d/%02d/%04d", d.Month, d.Day, d.Year) }

// CompareRep orders dates chronologically (value.Compare hook).
func (d DateRep) CompareRep(o any) int {
	e := o.(DateRep)
	a := d.ordinal()
	b := e.ordinal()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// EqualRep reports date equality (value.Equal hook).
func (d DateRep) EqualRep(o any) bool {
	e, ok := o.(DateRep)
	return ok && d == e
}

var cumDays = [...]int{0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334}

func leap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// ordinal converts to a day count comparable across dates (proleptic
// Gregorian, good enough for ordering and day arithmetic).
func (d DateRep) ordinal() int {
	y := d.Year - 1
	n := y*365 + y/4 - y/100 + y/400
	n += cumDays[d.Month-1]
	if d.Month > 2 && leap(d.Year) {
		n++
	}
	return n + d.Day
}

func daysIn(m, y int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if leap(y) {
			return 29
		}
		return 28
	}
}

// NewDate builds a Date ADT value, validating the civil date.
func NewDate(year, month, day int) (value.Value, error) {
	if month < 1 || month > 12 || day < 1 || day > daysIn(month, year) || year < 1 {
		return nil, fmt.Errorf("invalid date %d/%d/%d", month, day, year)
	}
	return value.ADTVal{ADT: "Date", Rep: DateRep{Year: year, Month: month, Day: day}}, nil
}

// ParseDate parses the mm/dd/yyyy literal form used by the paper.
func ParseDate(s string) (value.Value, error) {
	var m, d, y int
	if _, err := fmt.Sscanf(s, "%d/%d/%d", &m, &d, &y); err != nil {
		return nil, fmt.Errorf("bad date literal %q: want mm/dd/yyyy", s)
	}
	return NewDate(y, m, d)
}

func dateArg(args []value.Value, i int) (DateRep, error) {
	a, ok := args[i].(value.ADTVal)
	if !ok {
		return DateRep{}, fmt.Errorf("argument %d: want Date, got %s", i+1, args[i])
	}
	r, ok := a.Rep.(DateRep)
	if !ok {
		return DateRep{}, fmt.Errorf("argument %d: want Date, got %s", i+1, a.ADT)
	}
	return r, nil
}

func registerDate(r *Registry) {
	c, err := r.Define("Date")
	if err != nil {
		panic(err)
	}
	dt := c.Type
	must := func(e error) {
		if e != nil {
			panic(e)
		}
	}
	must(r.RegisterFunc("Date", &Func{
		Name: "date", Params: []types.Type{types.Varchar}, Result: dt,
		Impl: func(args []value.Value) (value.Value, error) {
			s, ok := value.AsString(args[0])
			if !ok {
				return nil, fmt.Errorf("date: want string literal")
			}
			return ParseDate(s)
		},
	}))
	must(r.RegisterFunc("Date", &Func{
		Name: "year", Params: []types.Type{dt}, Result: types.Int4,
		Impl: func(args []value.Value) (value.Value, error) {
			d, err := dateArg(args, 0)
			if err != nil {
				return nil, err
			}
			return value.NewInt(int64(d.Year)), nil
		},
	}))
	must(r.RegisterFunc("Date", &Func{
		Name: "month", Params: []types.Type{dt}, Result: types.Int4,
		Impl: func(args []value.Value) (value.Value, error) {
			d, err := dateArg(args, 0)
			if err != nil {
				return nil, err
			}
			return value.NewInt(int64(d.Month)), nil
		},
	}))
	must(r.RegisterFunc("Date", &Func{
		Name: "day", Params: []types.Type{dt}, Result: types.Int4,
		Impl: func(args []value.Value) (value.Value, error) {
			d, err := dateArg(args, 0)
			if err != nil {
				return nil, err
			}
			return value.NewInt(int64(d.Day)), nil
		},
	}))
	must(r.RegisterFunc("Date", &Func{
		Name: "add_days", Params: []types.Type{dt, types.Int4}, Result: dt,
		Impl: func(args []value.Value) (value.Value, error) {
			d, err := dateArg(args, 0)
			if err != nil {
				return nil, err
			}
			n, ok := value.AsInt(args[1])
			if !ok {
				return nil, fmt.Errorf("add_days: want integer day count")
			}
			// Walk day by day; fine for query-scale arithmetic.
			for n > 0 {
				d.Day++
				if d.Day > daysIn(d.Month, d.Year) {
					d.Day = 1
					d.Month++
					if d.Month > 12 {
						d.Month = 1
						d.Year++
					}
				}
				n--
			}
			for n < 0 {
				d.Day--
				if d.Day < 1 {
					d.Month--
					if d.Month < 1 {
						d.Month = 12
						d.Year--
					}
					d.Day = daysIn(d.Month, d.Year)
				}
				n++
			}
			return value.ADTVal{ADT: "Date", Rep: d}, nil
		},
	}))
	diff := &Func{
		Name: "diff_days", Params: []types.Type{dt, dt}, Result: types.Int4,
		Impl: func(args []value.Value) (value.Value, error) {
			a, err := dateArg(args, 0)
			if err != nil {
				return nil, err
			}
			b, err := dateArg(args, 1)
			if err != nil {
				return nil, err
			}
			return value.NewInt(int64(a.ordinal() - b.ordinal())), nil
		},
	}
	must(r.RegisterFunc("Date", diff))
	// "-" between two dates is the day difference, registered at the
	// additive precedence level.
	must(r.RegisterOperator("Date", Operator{
		Symbol: "-", Precedence: 5, Fn: diff,
	}))
}
