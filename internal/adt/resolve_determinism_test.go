package adt

import (
	"testing"

	"repro/internal/types"
)

// TestResolveAnyFuncDeterministic pins the fix that made ResolveAnyFunc
// collect candidates in class-name order rather than map order: the
// resolved overload and any ambiguity report must be identical on every
// call. (The detorder analyzer guards the catalog listings the same
// way.)
func TestResolveAnyFuncDeterministic(t *testing.T) {
	r := NewRegistry()
	zeta, err := r.Define("Zeta")
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := r.Define("Alpha")
	if err != nil {
		t.Fatal(err)
	}
	_ = zeta
	_ = alpha

	// Same name, different arities: exactly one applies to one argument.
	unary := &Func{Name: "pick", Params: []types.Type{types.Int4}, Result: types.Int4}
	binary := &Func{Name: "pick", Params: []types.Type{types.Int4, types.Int4}, Result: types.Int4}
	if err := r.RegisterFunc("Alpha", unary); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFunc("Zeta", binary); err != nil {
		t.Fatal(err)
	}
	// Same name, same signature in two classes: always ambiguous, with a
	// stable report.
	if err := r.RegisterFunc("Alpha", &Func{Name: "mix", Params: []types.Type{types.Int4}, Result: types.Int4}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFunc("Zeta", &Func{Name: "mix", Params: []types.Type{types.Int4}, Result: types.Int4}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 50; i++ {
		got, err := r.ResolveAnyFunc("pick", []types.Type{types.Int4})
		if err != nil {
			t.Fatal(err)
		}
		if got != unary {
			t.Fatalf("call %d resolved a different overload", i)
		}
		_, err = r.ResolveAnyFunc("mix", []types.Type{types.Int4})
		if err == nil {
			t.Fatalf("call %d: expected ambiguity error", i)
		}
		if want := "ambiguous overload of mix for (int4)"; err.Error() != want {
			t.Fatalf("call %d: error %q, want %q", i, err, want)
		}
	}
}
