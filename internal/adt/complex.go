package adt

import (
	"fmt"
	"math"

	"repro/internal/types"
	"repro/internal/value"
)

// ComplexRep is the internal representation of the Complex ADT of Figure
// 7 — the paper's running example of adding a new base type via an E
// dbclass with Add/Subtract/Multiply member functions and "+" registered
// as an alternative invocation syntax for Add.
type ComplexRep struct {
	Re, Im float64
}

// String renders the value as "a+bi".
func (c ComplexRep) String() string {
	if c.Im < 0 {
		return fmt.Sprintf("%g%gi", c.Re, c.Im)
	}
	return fmt.Sprintf("%g+%gi", c.Re, c.Im)
}

// EqualRep reports component-wise equality (value.Equal hook).
func (c ComplexRep) EqualRep(o any) bool {
	d, ok := o.(ComplexRep)
	return ok && c == d
}

// NewComplex builds a Complex ADT value.
func NewComplex(re, im float64) value.Value {
	return value.ADTVal{ADT: "Complex", Rep: ComplexRep{Re: re, Im: im}}
}

func complexArg(args []value.Value, i int) (ComplexRep, error) {
	a, ok := args[i].(value.ADTVal)
	if !ok {
		return ComplexRep{}, fmt.Errorf("argument %d: want Complex, got %s", i+1, args[i])
	}
	r, ok := a.Rep.(ComplexRep)
	if !ok {
		return ComplexRep{}, fmt.Errorf("argument %d: want Complex, got %s", i+1, a.ADT)
	}
	return r, nil
}

func binComplex(name string, f func(a, b ComplexRep) ComplexRep) *Func {
	return &Func{
		Name:   name,
		Params: nil, // filled by caller with the ADT type
		Impl: func(args []value.Value) (value.Value, error) {
			a, err := complexArg(args, 0)
			if err != nil {
				return nil, err
			}
			b, err := complexArg(args, 1)
			if err != nil {
				return nil, err
			}
			return value.ADTVal{ADT: "Complex", Rep: f(a, b)}, nil
		},
	}
}

func registerComplex(r *Registry) {
	c, err := r.Define("Complex")
	if err != nil {
		panic(err)
	}
	ct := c.Type
	must := func(e error) {
		if e != nil {
			panic(e)
		}
	}

	must(r.RegisterFunc("Complex", &Func{
		Name: "complex", Params: []types.Type{types.Float8, types.Float8}, Result: ct,
		Impl: func(args []value.Value) (value.Value, error) {
			re, ok1 := value.AsFloat(args[0])
			im, ok2 := value.AsFloat(args[1])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("complex: want two numbers")
			}
			return NewComplex(re, im), nil
		},
	}))

	add := binComplex("Add", func(a, b ComplexRep) ComplexRep {
		return ComplexRep{Re: a.Re + b.Re, Im: a.Im + b.Im}
	})
	add.Params = []types.Type{ct, ct}
	add.Result = ct
	must(r.RegisterFunc("Complex", add))

	sub := binComplex("Subtract", func(a, b ComplexRep) ComplexRep {
		return ComplexRep{Re: a.Re - b.Re, Im: a.Im - b.Im}
	})
	sub.Params = []types.Type{ct, ct}
	sub.Result = ct
	must(r.RegisterFunc("Complex", sub))

	mul := binComplex("Multiply", func(a, b ComplexRep) ComplexRep {
		return ComplexRep{Re: a.Re*b.Re - a.Im*b.Im, Im: a.Re*b.Im + a.Im*b.Re}
	})
	mul.Params = []types.Type{ct, ct}
	mul.Result = ct
	must(r.RegisterFunc("Complex", mul))

	must(r.RegisterFunc("Complex", &Func{
		Name: "Magnitude", Params: []types.Type{ct}, Result: types.Float8,
		Impl: func(args []value.Value) (value.Value, error) {
			a, err := complexArg(args, 0)
			if err != nil {
				return nil, err
			}
			return value.NewFloat(math.Hypot(a.Re, a.Im)), nil
		},
	}))
	must(r.RegisterFunc("Complex", &Func{
		Name: "Real", Params: []types.Type{ct}, Result: types.Float8,
		Impl: func(args []value.Value) (value.Value, error) {
			a, err := complexArg(args, 0)
			if err != nil {
				return nil, err
			}
			return value.NewFloat(a.Re), nil
		},
	}))
	must(r.RegisterFunc("Complex", &Func{
		Name: "Imag", Params: []types.Type{ct}, Result: types.Float8,
		Impl: func(args []value.Value) (value.Value, error) {
			a, err := complexArg(args, 0)
			if err != nil {
				return nil, err
			}
			return value.NewFloat(a.Im), nil
		},
	}))

	// Operator registrations: the paper's example overloads "+" for
	// Complex ("CnumPair.val1 + CnumPair.val2") while still accepting the
	// symmetric form "Add(CnumPair.val1, CnumPair.val2)".
	must(r.RegisterOperator("Complex", Operator{Symbol: "+", Precedence: 5, Fn: add}))
	must(r.RegisterOperator("Complex", Operator{Symbol: "-", Precedence: 5, Fn: sub}))
	must(r.RegisterOperator("Complex", Operator{Symbol: "*", Precedence: 6, Fn: mul}))
}
