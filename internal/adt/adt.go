// Package adt implements the EXTRA abstract data type facility.
//
// In the paper, new base types are added by writing a "dbclass" in E, the
// EXODUS implementation language (an extension of C++). The dbclass
// exports member functions, and functions may additionally be registered
// as infix or prefix operators with a declared precedence and
// associativity, exactly as in POSTGRES-style extensibility [Ston86,
// Ston87b] — except that EXCESS optimizes operators and functions
// uniformly.
//
// This package is the Go substitute for the E substrate: an ADT is a
// descriptor with Go-implemented member functions and operator
// registrations; the EXCESS semantic analyzer resolves overloaded
// operators against the registry and the executor invokes the
// implementations. The interface surface (register a class, register
// functions, register operators with precedence/associativity, invoke
// from queries) matches Figure 7 of the paper.
package adt

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
	"repro/internal/value"
)

// Func is a member function of an ADT (or a free function over ADTs).
type Func struct {
	Name   string
	Params []types.Type // declared parameter types
	Result types.Type
	Impl   func(args []value.Value) (value.Value, error)
}

// Arity returns the number of declared parameters.
func (f *Func) Arity() int { return len(f.Params) }

// Operator registers a function under an operator symbol. Prefix
// operators take one argument; infix operators take two. Functions with
// three or more arguments cannot be registered as operators (the paper's
// rule), and this is enforced at registration time.
type Operator struct {
	Symbol     string
	Prefix     bool
	Precedence int // 1 (loosest) .. 7 (tightest); see package parse
	RightAssoc bool
	Fn         *Func
}

// Class is an ADT descriptor — the analogue of an E dbclass interface.
type Class struct {
	Name  string
	Type  *types.ADT
	funcs map[string][]*Func // name -> overloads
}

// Funcs returns the overloads registered under name.
func (c *Class) Funcs(name string) []*Func { return c.funcs[name] }

// FuncNames returns the sorted member-function names, for catalog display.
func (c *Class) FuncNames() []string {
	out := make([]string, 0, len(c.funcs))
	for n := range c.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetFunc is a user-defined set (aggregate) function, generalized over
// element types via a constraint — the paper's "median over any totally
// ordered type" extension example, which POSTGRES could only provide for
// a single fixed type. Constraint decides whether the function applies to
// a given element type; Result gives the result type; Impl folds the
// elements.
type SetFunc struct {
	Name       string
	Constraint func(elem types.Type) bool
	Result     func(elem types.Type) types.Type
	Impl       func(elems []value.Value) (value.Value, error)
}

// Registry holds the ADTs, free functions, operators and set functions
// known to a database. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	classes  map[string]*Class
	ops      map[string][]*Operator // symbol -> overloads (mixed prefix/infix)
	setFuncs map[string]*SetFunc
}

// NewRegistry returns a registry preloaded with the built-in Date and
// Complex ADTs used throughout the paper's figures.
func NewRegistry() *Registry {
	r := &Registry{
		classes:  make(map[string]*Class),
		ops:      make(map[string][]*Operator),
		setFuncs: make(map[string]*SetFunc),
	}
	registerDate(r)
	registerComplex(r)
	return r
}

// Define registers a new ADT and returns its Class. It fails if the name
// is taken.
func (r *Registry) Define(name string) (*Class, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.classes[name]; dup {
		return nil, fmt.Errorf("adt %s already defined", name)
	}
	c := &Class{Name: name, Type: &types.ADT{Name: name}, funcs: map[string][]*Func{}}
	r.classes[name] = c
	return c, nil
}

// Lookup returns the ADT class registered under name.
func (r *Registry) Lookup(name string) (*Class, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classes[name]
	return c, ok
}

// Type returns the types.ADT for a registered class name.
func (r *Registry) Type(name string) (*types.ADT, bool) {
	c, ok := r.Lookup(name)
	if !ok {
		return nil, false
	}
	return c.Type, true
}

// Names returns the sorted names of all registered ADTs.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.classes))
	for n := range r.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterFunc adds a member function to a class. Overloading within a
// class is permitted on distinct signatures.
func (r *Registry) RegisterFunc(class string, f *Func) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.classes[class]
	if !ok {
		return fmt.Errorf("adt %s not defined", class)
	}
	for _, g := range c.funcs[f.Name] {
		if sameSig(g.Params, f.Params) {
			return fmt.Errorf("adt %s: function %s with this signature already defined", class, f.Name)
		}
	}
	c.funcs[f.Name] = append(c.funcs[f.Name], f)
	return nil
}

// RegisterOperator registers an operator as an alternative invocation
// syntax for a function, with explicit precedence and associativity (as
// the paper requires for new operators). Functions overloaded within a
// single dbclass may not be registered as operators, and operator
// functions must be unary (prefix) or binary (infix).
func (r *Registry) RegisterOperator(class string, op Operator) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.classes[class]
	if !ok {
		return fmt.Errorf("adt %s not defined", class)
	}
	if op.Fn == nil {
		return fmt.Errorf("operator %s: no function", op.Symbol)
	}
	if len(c.funcs[op.Fn.Name]) > 1 {
		return fmt.Errorf("operator %s: function %s is overloaded within dbclass %s and may not be an operator",
			op.Symbol, op.Fn.Name, class)
	}
	want := 2
	if op.Prefix {
		want = 1
	}
	if op.Fn.Arity() != want {
		return fmt.Errorf("operator %s: function %s has %d arguments, need %d",
			op.Symbol, op.Fn.Name, op.Fn.Arity(), want)
	}
	if op.Precedence < 1 || op.Precedence > 7 {
		return fmt.Errorf("operator %s: precedence %d out of range 1..7", op.Symbol, op.Precedence)
	}
	o := op
	r.ops[op.Symbol] = append(r.ops[op.Symbol], &o)
	return nil
}

// OperatorInfo reports the parse-level properties of a registered
// operator symbol: its precedence, associativity and fixity. All
// overloads of a symbol must agree on these; the first registration wins
// and later disagreeing registrations are rejected by ResolveOperator at
// semantic-analysis time.
func (r *Registry) OperatorInfo(symbol string) (prec int, rightAssoc, prefix, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ovs := r.ops[symbol]
	if len(ovs) == 0 {
		return 0, false, false, false
	}
	return ovs[0].Precedence, ovs[0].RightAssoc, ovs[0].Prefix, true
}

// ResolveOperator finds the operator overload applicable to the argument
// types. Candidates whose declared parameter types the arguments are
// assignable to are ranked by exactness (exact matches beat widenings).
func (r *Registry) ResolveOperator(symbol string, args []types.Type) (*Func, error) {
	r.mu.RLock()
	ovs := r.ops[symbol]
	r.mu.RUnlock()
	var cands []*Func
	for _, o := range ovs {
		if o.Fn.Arity() == len(args) {
			cands = append(cands, o.Fn)
		}
	}
	return resolve(symbol, cands, args)
}

// ResolveFunc finds the member-function overload of class applicable to
// the argument types. The receiver is args[0] under the paper's
// "CnumPair.val1.Add(x)" member syntax, but the symmetric call syntax
// "Add(a, b)" resolves identically.
func (r *Registry) ResolveFunc(class, name string, args []types.Type) (*Func, error) {
	c, ok := r.Lookup(class)
	if !ok {
		return nil, fmt.Errorf("adt %s not defined", class)
	}
	return resolve(class+"."+name, c.funcs[name], args)
}

// ResolveAnyFunc searches every class for a function overload matching
// name and argument types; used for the symmetric call syntax when the
// receiver type alone does not determine the class.
func (r *Registry) ResolveAnyFunc(name string, args []types.Type) (*Func, error) {
	r.mu.RLock()
	// Collect candidates in class-name order, so overload resolution
	// (and any ambiguity it reports) never depends on map iteration.
	classNames := make([]string, 0, len(r.classes))
	for n := range r.classes {
		classNames = append(classNames, n)
	}
	sort.Strings(classNames)
	var cands []*Func
	for _, n := range classNames {
		cands = append(cands, r.classes[n].funcs[name]...)
	}
	r.mu.RUnlock()
	return resolve(name, cands, args)
}

func resolve(what string, cands []*Func, args []types.Type) (*Func, error) {
	var best *Func
	bestScore := -1
	ambiguous := false
	for _, f := range cands {
		if len(f.Params) != len(args) {
			continue
		}
		score := 0
		ok := true
		for i, p := range f.Params {
			switch {
			case args[i].Equal(p):
				score += 2
			case types.AssignableTo(args[i], p):
				score++
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		switch {
		case score > bestScore:
			best, bestScore, ambiguous = f, score, false
		case score == bestScore:
			ambiguous = true
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no applicable overload of %s for (%s)", what, typeList(args))
	}
	if ambiguous {
		return nil, fmt.Errorf("ambiguous overload of %s for (%s)", what, typeList(args))
	}
	return best, nil
}

func typeList(ts []types.Type) string {
	s := ""
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s
}

func sameSig(a, b []types.Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// RegisterSetFunc adds a generic set function (user-defined aggregate).
func (r *Registry) RegisterSetFunc(f *SetFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.setFuncs[f.Name]; dup {
		return fmt.Errorf("set function %s already defined", f.Name)
	}
	r.setFuncs[f.Name] = f
	return nil
}

// HasSetFunc reports whether a set function is registered under name.
func (r *Registry) HasSetFunc(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.setFuncs[name]
	return ok
}

// SetFuncFor returns the set function name if it applies to sets with the
// given element type.
func (r *Registry) SetFuncFor(name string, elem types.Type) (*SetFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.setFuncs[name]
	if !ok || (f.Constraint != nil && !f.Constraint(elem)) {
		return nil, false
	}
	return f, true
}
