package extra

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

// The crash harness re-executes this test binary as a child process that
// runs an append workload against a WAL-backed database, printing an ACK
// line for every commit the engine acknowledged as durable. The parent
// kills the child at a random moment (SIGKILL — no shutdown path runs),
// reopens the same log directory, and checks the two durability
// invariants: the store is consistent, and every acknowledged write is
// present. Rows beyond the last ACK are allowed — a commit can become
// durable in the instant between fsync and the ACK reaching the parent —
// but an acknowledged row that is missing is a contract violation.

const (
	crashChildEnv = "EXTRA_CRASH_CHILD"
	crashDirEnv   = "EXTRA_CRASH_DIR"
	crashRoundEnv = "EXTRA_CRASH_ROUND"
	crashSyncEnv  = "EXTRA_CRASH_SYNC"
)

const crashSchema = `
	define type CrashRow: ( name: varchar, round: int4 )
	create CrashRows : { own CrashRow }
`

// TestCrashChild is the child side. It is a no-op unless the parent's
// env gate is set, so a plain `go test` never runs a workload here.
func TestCrashChild(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("crash harness child (run by TestCrashRecovery)")
	}
	dir := os.Getenv(crashDirEnv)
	round := os.Getenv(crashRoundEnv)
	mode, err := ParseWALSyncMode(os.Getenv(crashSyncEnv))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(WithWAL(dir), WithWALSync(mode))
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	// Periodic checkpoints so kills also land mid-checkpoint.
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				db.Checkpoint() //nolint:errcheck // killed any moment; best-effort
			}
		}
	}()
	defer close(stop)

	var mu sync.Mutex // serializes ACK lines on stdout
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.NewSession()
			st, err := s.Prepare(`append to CrashRows (name = $1, round = $2)`)
			if err != nil {
				fmt.Printf("CHILDERR prepare: %v\n", err)
				return
			}
			for i := 0; ; i++ {
				name := fmt.Sprintf("r%s-g%d-%06d", round, g, i)
				if _, err := st.Exec(name, g); err != nil {
					fmt.Printf("CHILDERR exec: %v\n", err)
					return
				}
				mu.Lock()
				fmt.Printf("ACK %s\n", name)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}

// TestCrashRecovery is the parent: repeated kill-and-reopen rounds over
// one log directory, alternating sync modes.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		t.Skip("parent side; this process is a child")
	}
	if testing.Short() {
		t.Skip("crash harness forks children; skipped in -short")
	}
	dir := t.TempDir()

	// The schema is created by the parent in a clean open/close cycle so
	// every child round starts from a well-formed database.
	db, err := Open(WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(crashSchema)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rounds := 5
	if v := os.Getenv("EXTRA_CRASH_ROUNDS"); v != "" {
		fmt.Sscanf(v, "%d", &rounds) //nolint:errcheck
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	acked := make(map[string]bool)

	for round := 0; round < rounds; round++ {
		mode := []string{"group", "each"}[round%2]
		cmd := exec.Command(os.Args[0], "-test.run", "TestCrashChild$")
		cmd.Env = append(os.Environ(),
			crashChildEnv+"=1",
			crashDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", crashRoundEnv, round),
			crashSyncEnv+"="+mode,
		)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		ackCh := make(chan string, 1024)
		go func() {
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				line := sc.Text()
				if name, ok := strings.CutPrefix(line, "ACK "); ok {
					ackCh <- name
				} else if strings.HasPrefix(line, "CHILDERR") {
					t.Errorf("round %d: %s", round, line)
				}
			}
			close(ackCh)
		}()

		// Let the child commit for a random window past its first ACK,
		// then kill it without ceremony.
		killAfter := 1 + rng.Intn(40)
		seen := 0
		deadline := time.After(20 * time.Second)
	collect:
		for seen < killAfter {
			select {
			case name, ok := <-ackCh:
				if !ok {
					break collect // child died on its own; CHILDERR reported
				}
				acked[name] = true
				seen++
			case <-deadline:
				t.Fatalf("round %d: child produced %d/%d ACKs before timeout", round, seen, killAfter)
			}
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: kill: %v", round, err)
		}
		// Drain ACKs that were already in flight when the kill landed.
		for name := range ackCh {
			acked[name] = true
		}
		cmd.Wait() //nolint:errcheck // killed; non-zero exit is expected

		// Recover and check the oracle.
		db, err := Open(WithWAL(dir))
		if err != nil {
			t.Fatalf("round %d: reopen after kill: %v", round, err)
		}
		if v := db.CheckConsistency(); v != nil {
			t.Fatalf("round %d: consistency after crash: %v", round, v)
		}
		res, err := db.Query(`retrieve (C.name) from C in CrashRows`)
		if err != nil {
			t.Fatalf("round %d: query after recovery: %v", round, err)
		}
		present := make(map[string]bool, len(res.Rows))
		for _, row := range res.Rows {
			present[strings.Trim(row[0].String(), `"`)] = true
		}
		missing := 0
		for name := range acked {
			if !present[name] {
				missing++
				if missing <= 5 {
					t.Errorf("round %d: acknowledged row %s lost after crash", round, name)
				}
			}
		}
		if missing > 0 {
			t.Fatalf("round %d: %d acknowledged rows lost (%d acked, %d present)",
				round, missing, len(acked), len(present))
		}
		if err := db.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
		t.Logf("round %d (%s): %d rows acked so far, %d present after recovery",
			round, mode, len(acked), len(present))
	}
}
