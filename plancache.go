package extra

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/excess/ast"
	"repro/internal/excess/sema"
	"repro/internal/metrics"
)

// planCache is the engine-wide compiled-statement cache: a text-keyed map
// from normalized retrieve source to its checked form and optimized plan,
// so a statement executed repeatedly (the OLTP shape the paper's
// application interfaces generate) pays parse/check/plan once and a map
// hit thereafter.
//
// The key embeds everything planning reads besides the statement text:
//
//   - the catalog version, bumped by every DDL statement — a schema change
//     invalidates the whole cache at once without enumerating entries;
//   - the optimizer-option fingerprint, so toggling a knob (benchmarks do
//     this mid-run) never serves a plan built under different rules;
//   - the session's range-declaration fingerprint, because "retrieve
//     (E.name)" means different things after "range of E is ..." changes.
//
// Only parameterless retrieves without an into clause are cached: into
// creates schema (never repeated), and placeholder statements are served
// by the prepared-statement path, which holds its plan directly.
//
// Entries store the Checked form plus a Cached=true Clone of the plan.
// The clone is shared by every hit and never mutated — a sampled
// statement that needs instrumentation clones again before EnableRuntime.
type planCache struct {
	mu  sync.RWMutex // extra:lock plancache.mu
	cap int
	m   map[planKey]*planEntry
	// fifo holds keys in insertion order for eviction. Plans are tiny
	// (shared pointers into the checked tree), so recency tracking is not
	// worth a lock upgrade on the hit path.
	fifo []planKey

	hits, misses, evictions *metrics.Counter
	size                    *metrics.Gauge
}

type planKey struct {
	text   string
	catVer uint64
	optsFP uint64
	ranges string
}

type planEntry struct {
	cq   *sema.CheckedRetrieve
	plan *algebra.Plan
}

const defaultPlanCacheCap = 256

func newPlanCache(capacity int, reg *metrics.Registry) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:       capacity,
		m:         make(map[planKey]*planEntry, capacity),
		hits:      reg.Counter("plan.cache.hits"),
		misses:    reg.Counter("plan.cache.misses"),
		evictions: reg.Counter("plan.cache.evictions"),
		size:      reg.Gauge("plan.cache.size"),
	}
}

// cacheable reports whether a retrieve may be served from the cache: no
// into clause (DDL side effect) and no procedure-parameter frame (the
// checked tree would capture frame-specific types).
func cacheable(r *ast.Retrieve, params *paramScope) bool {
	return r.Into == "" && params == nil
}

// rangesFingerprint renders a session's range declarations into a stable
// string: sorted "name=decl" pairs. Sessions redeclaring a range variable
// get distinct keys; sessions with identical declarations share entries.
func rangesFingerprint(sess *sema.Session) string {
	if len(sess.Ranges) == 0 {
		return ""
	}
	names := make([]string, 0, len(sess.Ranges))
	for name := range sess.Ranges {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+"="+ast.Print(sess.Ranges[name]))
	}
	return strings.Join(parts, ";")
}

// get returns the cached entry for the key, or nil.
//
// extra:acquires plancache.mu.R
func (pc *planCache) get(key planKey) *planEntry {
	pc.mu.RLock()
	e := pc.m[key]
	pc.mu.RUnlock()
	if e == nil {
		pc.misses.Inc()
		return nil
	}
	pc.hits.Inc()
	return e
}

// put inserts a freshly planned statement, evicting the oldest entry at
// capacity. The stored plan is a Cached=true clone: the inserting
// statement keeps executing its own unmarked plan, and all later hits
// share the immutable marked copy.
//
// extra:acquires plancache.mu.W
func (pc *planCache) put(key planKey, cq *sema.CheckedRetrieve, plan *algebra.Plan) {
	marked := plan.Clone()
	marked.Cached = true
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, dup := pc.m[key]; dup {
		return // a concurrent reader planned the same statement; keep theirs
	}
	for len(pc.m) >= pc.cap && len(pc.fifo) > 0 {
		old := pc.fifo[0]
		pc.fifo = pc.fifo[1:]
		if _, ok := pc.m[old]; ok {
			delete(pc.m, old)
			pc.evictions.Inc()
		}
	}
	pc.m[key] = &planEntry{cq: cq, plan: marked}
	pc.fifo = append(pc.fifo, key)
	pc.size.Set(int64(len(pc.m)))
}

// peek is get without counter traffic, for EXPLAIN: an explain is not an
// execution, so it must not skew the hit ratio.
//
// extra:acquires plancache.mu.R
func (pc *planCache) peek(key planKey) *planEntry {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return pc.m[key]
}

// len returns the live entry count (tests).
//
// extra:acquires plancache.mu.R
func (pc *planCache) len() int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return len(pc.m)
}
