package extra

import (
	"fmt"
	"sync"
	"testing"
)

// The concurrency tests exercise the readers-writer statement lock and
// the per-statement executor state: many sessions running the paper's
// figure queries at once must behave exactly like one session running
// them in order, and a writer mixed in must never expose a torn tuple
// or lose an update. Run with -race; the CI stress job does.

// figureQueries is a read-only slice of the Figure 1-7 retrievals (see
// figures_test.go for the serial versions with expected answers). Every
// query here is classified read-only by sema.ReadOnly, so under the
// differential test all eight goroutines hold the shared lock at once.
var figureQueries = []string{
	// Figure 1: ADT attribute retrieval.
	`retrieve (t = Today)`,
	`retrieve (m = month(Today))`,
	// Figure 5: implicit join through a reference path.
	`retrieve (E.name) from E in Employees where E.dept.floor = 2`,
	// Figure 5: nested set with a path-correlated implicit variable.
	`retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2`,
	// Figure 5: explicit join between two extents.
	`retrieve (E.name, D.dname) from E in Employees, D in Departments where E.salary > 80 and D.floor = E.dept.floor`,
	// Figure 5: identity join on references.
	`retrieve (A.name, B.name) from A in Employees, B in Employees where A.dept is B.dept and A.name != B.name`,
	// Figure 6: aggregates — whole-extent, grouped, over-dedup, per-binding.
	`retrieve (s = sum(Employees.salary))`,
	`retrieve (f = E.dept.floor, a = avg(E.salary by E.dept.floor)) from E in Employees`,
	`retrieve (n = count(E.dept.dname over E.dept.dname)) from E in Employees`,
	`retrieve (E.name, n = count(E.kids)) from E in Employees where count(E.kids) >= 1`,
	// Figure 6: universal quantification (needs the per-session EV range).
	`retrieve (D.dname) from D in Departments where EV.dept isnot D or EV.salary > 60`,
	// Figure 7: ADT member functions in all three invocation syntaxes.
	`retrieve (s = P.val1 + P.val2) from P in Pairs`,
	`retrieve (s = Add(P.val1, P.val2)) from P in Pairs`,
	`retrieve (m = Magnitude(P.val1 * P.val2)) from P in Pairs`,
}

// loadFigureDB loads the company schema plus the Figure 1 Date variable
// and the Figure 7 Complex pairs so every query in figureQueries has
// data behind it.
func loadFigureDB(t *testing.T) *DB {
	t.Helper()
	db := mustOpen(t)
	loadCompany(t, db)
	db.MustExec(`create Today : Date`)
	db.MustExec(`set Today = date("12/07/1987")`)
	db.MustExec(`
		define type CnumPair: ( val1: Complex, val2: Complex )
		create Pairs : { own CnumPair }
	`)
	db.MustExec(`append to Pairs (val1 = complex(1.0, 2.0), val2 = complex(3.0, -1.0))`)
	return db
}

// TestConcurrentFigureQueriesMatchSerial runs every figure query from 8
// goroutines, each with its own session, and requires every result to
// be byte-identical to the serial answer. This is the differential
// check for the shared read path: the per-statement State split means
// no goroutine can observe another's deref cache, parameters or stats.
func TestConcurrentFigureQueriesMatchSerial(t *testing.T) {
	db := loadFigureDB(t)

	// Serial reference answers, one session, queries in order.
	ref := db.NewSession()
	ref.MustExec(`range of EV is all Employees`)
	want := make([]string, len(figureQueries))
	for i, q := range figureQueries {
		want[i] = ref.MustQuery(q).String()
	}

	const goroutines = 8
	const rounds = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			if _, err := sess.Exec(`range of EV is all Employees`); err != nil {
				t.Errorf("goroutine %d: range decl: %v", g, err)
				return
			}
			for r := 0; r < rounds; r++ {
				// Stagger the starting query so goroutines collide on
				// different statements each round.
				for i := range figureQueries {
					q := figureQueries[(i+g)%len(figureQueries)]
					res, err := sess.Query(q)
					if err != nil {
						t.Errorf("goroutine %d: %s: %v", g, q, err)
						return
					}
					if got := res.String(); got != want[(i+g)%len(figureQueries)] {
						t.Errorf("goroutine %d round %d: %s:\ngot  %q\nwant %q",
							g, r, q, got, want[(i+g)%len(figureQueries)])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentReadersWithWriter mixes one writing session with
// several reading sessions. The writer appends employees whose age
// always equals their salary; a read that ever sees the two fields
// disagree has observed a torn tuple. Readers also track the employee
// count, which must be non-decreasing (appends only) — a decrease
// would mean a statement ran against a half-applied write. Finally the
// total count must equal initial + writes: a lost append (or a lost
// store-version bump hiding one behind a stale deref cache) would show
// up as a shortfall.
func TestConcurrentReadersWithWriter(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)
	const initial = 4 // loadCompany's employees
	const writes = 60
	const readers = 6

	var wg sync.WaitGroup
	wdone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(wdone)
		w := db.NewSession()
		for i := 0; i < writes; i++ {
			v := 1000 + i
			src := fmt.Sprintf(
				`append to Employees (name = "W%d", age = %d, salary = %d)`, i, v, v)
			if _, err := w.Exec(src); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			lastW, lastN := 0, 0
			finishing := false
			for {
				res, err := sess.Query(
					`retrieve (E.name, E.age, E.salary) from E in Employees where E.age >= 1000`)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				for _, row := range res.Rows {
					if row[1].String() != row[2].String() {
						t.Errorf("reader %d: torn tuple %v: age %s != salary %s",
							g, row[0], row[1], row[2])
						return
					}
				}
				if len(res.Rows) < lastW {
					t.Errorf("reader %d: writer rows went backwards: %d -> %d", g, lastW, len(res.Rows))
					return
				}
				lastW = len(res.Rows)
				cnt, err := sess.Query(`retrieve (n = count(Employees))`)
				if err != nil {
					t.Errorf("reader %d: count: %v", g, err)
					return
				}
				n := 0
				fmt.Sscanf(cnt.Rows[0][0].String(), "%d", &n)
				if n < lastN {
					t.Errorf("reader %d: employee count went backwards: %d -> %d", g, lastN, n)
					return
				}
				lastN = n
				if finishing {
					return
				}
				// One more full read after the writer finishes, so every
				// reader observes the final state at least once.
				select {
				case <-wdone:
					finishing = true
				default:
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	res := db.MustQuery(`retrieve (n = count(Employees))`)
	if got := res.Rows[0][0].String(); got != itoa(initial+writes) {
		t.Fatalf("lost update: final count %s, want %d", got, initial+writes)
	}
}

// TestMetricsSnapshotConsistentMidStatement samples MetricsSnapshot and
// PoolStats continuously while sessions execute: every counter must be
// monotonic between snapshots (single-pass atomic reads can lag but
// never tear or decrease), and pool.hits+pool.misses in a snapshot must
// never exceed what a direct PoolStats taken afterwards reports.
func TestMetricsSnapshotConsistentMidStatement(t *testing.T) {
	db := loadFigureDB(t)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			for {
				select {
				case <-done:
					return
				default:
				}
				q := figureQueries[2+(g%4)] // plain retrieves, no ranges needed
				if _, err := sess.Query(q); err != nil {
					t.Errorf("sampler workload: %v", err)
					return
				}
			}
		}(g)
	}

	prev := db.MetricsSnapshot()
	for i := 0; i < 200; i++ {
		s := db.MetricsSnapshot()
		for name, v := range prev.Counters {
			if cur, ok := s.Counters[name]; ok && cur < v {
				t.Fatalf("counter %s went backwards: %d -> %d", name, v, cur)
			}
		}
		ps := db.PoolStats()
		if s.Counters["pool.hits"] > ps.Hits || s.Counters["pool.misses"] > ps.Misses {
			t.Fatalf("snapshot pool counters lead the pool: snapshot (%d,%d) vs direct (%d,%d)",
				s.Counters["pool.hits"], s.Counters["pool.misses"], ps.Hits, ps.Misses)
		}
		prev = s
	}
	close(done)
	wg.Wait()
}

// TestSlowQuerySessionAttribution checks that the slow-query ring tags
// entries with the id of the session that ran them.
func TestSlowQuerySessionAttribution(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)
	db.SetSlowQueryThreshold(1) // 1ns: log everything

	a, b := db.NewSession(), db.NewSession()
	a.MustQuery(`retrieve (E.name) from E in Employees`)
	b.MustQuery(`retrieve (D.dname) from D in Departments`)

	seen := map[int64]bool{}
	for _, e := range db.SlowQueries() {
		seen[e.Session] = true
	}
	if !seen[a.ID()] || !seen[b.ID()] {
		t.Fatalf("slow log missing session ids %d/%d: %+v", a.ID(), b.ID(), db.SlowQueries())
	}
}
