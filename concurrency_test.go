package extra

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/oid"
	"repro/internal/value"
)

// The concurrency tests exercise the readers-writer statement lock and
// the per-statement executor state: many sessions running the paper's
// figure queries at once must behave exactly like one session running
// them in order, and a writer mixed in must never expose a torn tuple
// or lose an update. Run with -race; the CI stress job does.

// figureQueries is a read-only slice of the Figure 1-7 retrievals (see
// figures_test.go for the serial versions with expected answers). Every
// query here is classified read-only by sema.ReadOnly, so under the
// differential test all eight goroutines hold the shared lock at once.
var figureQueries = []string{
	// Figure 1: ADT attribute retrieval.
	`retrieve (t = Today)`,
	`retrieve (m = month(Today))`,
	// Figure 5: implicit join through a reference path.
	`retrieve (E.name) from E in Employees where E.dept.floor = 2`,
	// Figure 5: nested set with a path-correlated implicit variable.
	`retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2`,
	// Figure 5: explicit join between two extents.
	`retrieve (E.name, D.dname) from E in Employees, D in Departments where E.salary > 80 and D.floor = E.dept.floor`,
	// Figure 5: identity join on references.
	`retrieve (A.name, B.name) from A in Employees, B in Employees where A.dept is B.dept and A.name != B.name`,
	// Figure 6: aggregates — whole-extent, grouped, over-dedup, per-binding.
	`retrieve (s = sum(Employees.salary))`,
	`retrieve (f = E.dept.floor, a = avg(E.salary by E.dept.floor)) from E in Employees`,
	`retrieve (n = count(E.dept.dname over E.dept.dname)) from E in Employees`,
	`retrieve (E.name, n = count(E.kids)) from E in Employees where count(E.kids) >= 1`,
	// Figure 6: universal quantification (needs the per-session EV range).
	`retrieve (D.dname) from D in Departments where EV.dept isnot D or EV.salary > 60`,
	// Figure 7: ADT member functions in all three invocation syntaxes.
	`retrieve (s = P.val1 + P.val2) from P in Pairs`,
	`retrieve (s = Add(P.val1, P.val2)) from P in Pairs`,
	`retrieve (m = Magnitude(P.val1 * P.val2)) from P in Pairs`,
}

// loadFigureDB loads the company schema plus the Figure 1 Date variable
// and the Figure 7 Complex pairs so every query in figureQueries has
// data behind it.
func loadFigureDB(t *testing.T) *DB {
	t.Helper()
	db := mustOpen(t)
	loadCompany(t, db)
	db.MustExec(`create Today : Date`)
	db.MustExec(`set Today = date("12/07/1987")`)
	db.MustExec(`
		define type CnumPair: ( val1: Complex, val2: Complex )
		create Pairs : { own CnumPair }
	`)
	db.MustExec(`append to Pairs (val1 = complex(1.0, 2.0), val2 = complex(3.0, -1.0))`)
	return db
}

// TestConcurrentFigureQueriesMatchSerial runs every figure query from 8
// goroutines, each with its own session, and requires every result to
// be byte-identical to the serial answer. This is the differential
// check for the shared read path: the per-statement State split means
// no goroutine can observe another's deref cache, parameters or stats.
func TestConcurrentFigureQueriesMatchSerial(t *testing.T) {
	db := loadFigureDB(t)

	// Serial reference answers, one session, queries in order.
	ref := db.NewSession()
	ref.MustExec(`range of EV is all Employees`)
	want := make([]string, len(figureQueries))
	for i, q := range figureQueries {
		want[i] = ref.MustQuery(q).String()
	}

	const goroutines = 8
	const rounds = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			if _, err := sess.Exec(`range of EV is all Employees`); err != nil {
				t.Errorf("goroutine %d: range decl: %v", g, err)
				return
			}
			for r := 0; r < rounds; r++ {
				// Stagger the starting query so goroutines collide on
				// different statements each round.
				for i := range figureQueries {
					q := figureQueries[(i+g)%len(figureQueries)]
					res, err := sess.Query(q)
					if err != nil {
						t.Errorf("goroutine %d: %s: %v", g, q, err)
						return
					}
					if got := res.String(); got != want[(i+g)%len(figureQueries)] {
						t.Errorf("goroutine %d round %d: %s:\ngot  %q\nwant %q",
							g, r, q, got, want[(i+g)%len(figureQueries)])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentReadersWithWriter mixes one writing session with
// several reading sessions. The writer appends employees whose age
// always equals their salary; a read that ever sees the two fields
// disagree has observed a torn tuple. Readers also track the employee
// count, which must be non-decreasing (appends only) — a decrease
// would mean a statement ran against a half-applied write. Finally the
// total count must equal initial + writes: a lost append (or a lost
// store-version bump hiding one behind a stale deref cache) would show
// up as a shortfall.
func TestConcurrentReadersWithWriter(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)
	const initial = 4 // loadCompany's employees
	const writes = 60
	const readers = 6

	var wg sync.WaitGroup
	wdone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(wdone)
		w := db.NewSession()
		for i := 0; i < writes; i++ {
			v := 1000 + i
			src := fmt.Sprintf(
				`append to Employees (name = "W%d", age = %d, salary = %d)`, i, v, v)
			if _, err := w.Exec(src); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			lastW, lastN := 0, 0
			finishing := false
			for {
				res, err := sess.Query(
					`retrieve (E.name, E.age, E.salary) from E in Employees where E.age >= 1000`)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				for _, row := range res.Rows {
					if row[1].String() != row[2].String() {
						t.Errorf("reader %d: torn tuple %v: age %s != salary %s",
							g, row[0], row[1], row[2])
						return
					}
				}
				if len(res.Rows) < lastW {
					t.Errorf("reader %d: writer rows went backwards: %d -> %d", g, lastW, len(res.Rows))
					return
				}
				lastW = len(res.Rows)
				cnt, err := sess.Query(`retrieve (n = count(Employees))`)
				if err != nil {
					t.Errorf("reader %d: count: %v", g, err)
					return
				}
				n := 0
				fmt.Sscanf(cnt.Rows[0][0].String(), "%d", &n)
				if n < lastN {
					t.Errorf("reader %d: employee count went backwards: %d -> %d", g, lastN, n)
					return
				}
				lastN = n
				if finishing {
					return
				}
				// One more full read after the writer finishes, so every
				// reader observes the final state at least once.
				select {
				case <-wdone:
					finishing = true
				default:
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	res := db.MustQuery(`retrieve (n = count(Employees))`)
	if got := res.Rows[0][0].String(); got != itoa(initial+writes) {
		t.Fatalf("lost update: final count %s, want %d", got, initial+writes)
	}
}

// TestMetricsSnapshotConsistentMidStatement samples MetricsSnapshot and
// PoolStats continuously while sessions execute: every counter must be
// monotonic between snapshots (single-pass atomic reads can lag but
// never tear or decrease), and pool.hits+pool.misses in a snapshot must
// never exceed what a direct PoolStats taken afterwards reports.
func TestMetricsSnapshotConsistentMidStatement(t *testing.T) {
	db := loadFigureDB(t)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			for {
				select {
				case <-done:
					return
				default:
				}
				q := figureQueries[2+(g%4)] // plain retrieves, no ranges needed
				if _, err := sess.Query(q); err != nil {
					t.Errorf("sampler workload: %v", err)
					return
				}
			}
		}(g)
	}

	prev := db.MetricsSnapshot()
	for i := 0; i < 200; i++ {
		s := db.MetricsSnapshot()
		for name, v := range prev.Counters {
			if cur, ok := s.Counters[name]; ok && cur < v {
				t.Fatalf("counter %s went backwards: %d -> %d", name, v, cur)
			}
		}
		ps := db.PoolStats()
		if s.Counters["pool.hits"] > ps.Hits || s.Counters["pool.misses"] > ps.Misses {
			t.Fatalf("snapshot pool counters lead the pool: snapshot (%d,%d) vs direct (%d,%d)",
				s.Counters["pool.hits"], s.Counters["pool.misses"], ps.Hits, ps.Misses)
		}
		prev = s
	}
	close(done)
	wg.Wait()
}

// TestSlowQuerySessionAttribution checks that the slow-query ring tags
// entries with the id of the session that ran them.
func TestSlowQuerySessionAttribution(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)
	db.SetSlowQueryThreshold(1) // 1ns: log everything

	a, b := db.NewSession(), db.NewSession()
	a.MustQuery(`retrieve (E.name) from E in Employees`)
	b.MustQuery(`retrieve (D.dname) from D in Departments`)

	seen := map[int64]bool{}
	for _, e := range db.SlowQueries() {
		seen[e.Session] = true
	}
	if !seen[a.ID()] || !seen[b.ID()] {
		t.Fatalf("slow log missing session ids %d/%d: %+v", a.ID(), b.ID(), db.SlowQueries())
	}
}

// The MVCC tests below pin down the snapshot contract introduced by the
// copy-on-write versioned store: a pinned snapshot is immutable, the
// published version only moves forward, a reader never waits behind the
// commit lock, and every mutation statement becomes visible atomically.

// empNames collects the Employees names visible in a snapshot.
func empNames(t *testing.T, sn interface {
	ScanExtent(string, func(oid.OID, *value.Tuple) error) error
}) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	err := sn.ScanExtent("Employees", func(_ oid.OID, tv *value.Tuple) error {
		names[strings.Trim(tv.Get("name").String(), `"`)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestConcurrentSnapshotPinnedReaderIsolation is the version-pinning
// half of the snapshot contract: a reader pinned to version N must
// never see version N+1's writes, no matter how many commits publish
// while it holds the snapshot.
func TestConcurrentSnapshotPinnedReaderIsolation(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)

	pinned := db.store.Snapshot()
	v0 := pinned.Version()
	n0, err := pinned.ExtentLen("Employees")
	if err != nil {
		t.Fatal(err)
	}

	// Publish two newer versions: an append and a bulk replace.
	db.MustExec(`append to Employees (name = "Pinned", age = 1, salary = 1)`)
	db.MustExec(`replace E (salary = E.salary + 5) from E in Employees where E.name = "Ann"`)

	live := db.store.Snapshot()
	if live.Version() <= v0 {
		t.Fatalf("commit did not advance the published version: %d -> %d", v0, live.Version())
	}
	if pinned.Version() != v0 {
		t.Fatalf("pinned snapshot's version changed: %d -> %d", v0, pinned.Version())
	}
	if n, _ := pinned.ExtentLen("Employees"); n != n0 {
		t.Fatalf("pinned snapshot grew: %d -> %d employees", n0, n)
	}
	if empNames(t, pinned)["Pinned"] {
		t.Fatal("pinned snapshot at version N sees version N+1's append")
	}
	if !empNames(t, live)["Pinned"] {
		t.Fatal("live snapshot missing the committed append")
	}
	// The engine's read path serves the live version.
	res := db.MustQuery(`retrieve (E.name) from E in Employees where E.name = "Pinned"`)
	if len(res.Rows) != 1 {
		t.Fatalf("query on the live snapshot returned %d rows, want 1", len(res.Rows))
	}
}

// TestConcurrentSnapshotVersionMonotonic samples the published snapshot
// while a writer commits: versions must never decrease, the employee
// count must never shrink (appends only), and re-reading a snapshot
// must be repeatable — the immutability half of the contract.
func TestConcurrentSnapshotVersionMonotonic(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		w := db.NewSession()
		for i := 0; i < 60; i++ {
			if _, err := w.Exec(fmt.Sprintf(
				`append to Employees (name = "M%d", age = 20, salary = 30)`, i)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastV uint64
			lastN := 0
			for {
				sn := db.store.Snapshot()
				if sn.Version() < lastV {
					t.Errorf("sampler %d: version went backwards: %d -> %d", g, lastV, sn.Version())
					return
				}
				lastV = sn.Version()
				n1, err := sn.ExtentLen("Employees")
				if err != nil {
					t.Errorf("sampler %d: %v", g, err)
					return
				}
				n2, _ := sn.ExtentLen("Employees")
				if n1 != n2 {
					t.Errorf("sampler %d: snapshot not repeatable: %d then %d", g, n1, n2)
					return
				}
				if n1 < lastN {
					t.Errorf("sampler %d: extent shrank under appends: %d -> %d", g, lastN, n1)
					return
				}
				lastN = n1
				select {
				case <-done:
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentReaderUnblockedByCommitLock is the issue's oracle: a
// read statement must complete while a write batch is mid-flight. The
// test holds the commit lock itself — the exact state a bulk update is
// in between its first mutation and its commit — and requires a
// concurrent Query to finish anyway. Under the old design the reader
// parked on the statement RWMutex until the writer finished.
func TestConcurrentReaderUnblockedByCommitLock(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)

	db.wmu.Lock() // a write batch is mid-flight and stays mid-flight
	res := make(chan error, 1)
	go func() {
		_, err := db.Query(`retrieve (E.name) from E in Employees where E.dept.floor = 2`)
		res <- err
	}()
	select {
	case err := <-res:
		if err != nil {
			t.Errorf("reader failed under commit lock: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Error("reader blocked behind the commit lock: snapshot reads are not lock-free")
	}
	db.wmu.Unlock()
}

// TestConcurrentBulkReplaceAtomicVisibility: a bulk replace rewrites
// every employee's salary to the same generation value; a reader that
// ever sees two distinct salaries has observed a half-applied batch.
// The generation sum must also be non-decreasing — a reader served by a
// snapshot older than one it already saw would violate monotonicity.
func TestConcurrentBulkReplaceAtomicVisibility(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)
	const emps = 4 // loadCompany's employees
	db.MustExec(`replace E (salary = 1000) from E in Employees`)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		w := db.NewSession()
		for g := 1; g <= 40; g++ {
			if _, err := w.Exec(fmt.Sprintf(
				`replace E (salary = %d) from E in Employees`, 1000+g)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			lastSum := 0
			for {
				res, err := sess.Query(
					`retrieve (d = count(E.salary over E.salary), s = sum(E.salary)) from E in Employees`)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if got := res.Rows[0][0].String(); got != "1" {
					t.Errorf("reader %d: saw %s distinct salaries mid-replace: torn batch", g, got)
					return
				}
				sum := 0
				fmt.Sscanf(res.Rows[0][1].String(), "%d", &sum)
				if sum%emps != 0 {
					t.Errorf("reader %d: salary sum %d not a whole generation", g, sum)
					return
				}
				if sum < lastSum {
					t.Errorf("reader %d: generation went backwards: %d -> %d", g, lastSum, sum)
					return
				}
				lastSum = sum
				select {
				case <-done:
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentDumpDuringWrites: Dump pins one snapshot and streams
// from it, so a dump taken mid-workload must load back as a consistent
// point in time — every invariant the writer maintains holds, and the
// writer's appends appear as a strict prefix (nothing torn, nothing
// skipped). The loaded copy must also pass its own consistency check.
func TestConcurrentDumpDuringWrites(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)
	const writes = 40

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		w := db.NewSession()
		for i := 0; i < writes; i++ {
			v := 1000 + i
			if _, err := w.Exec(fmt.Sprintf(
				`append to Employees (name = "W%d", age = %d, salary = %d)`, i, v, v)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	var dumps []*bytes.Buffer
	for {
		var buf bytes.Buffer
		if err := db.Dump(&buf); err != nil {
			t.Fatalf("dump during writes: %v", err)
		}
		dumps = append(dumps, &buf)
		select {
		case <-done:
		default:
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	wg.Wait()
	// One more after the writer is done, so the final state is covered.
	var final bytes.Buffer
	if err := db.Dump(&final); err != nil {
		t.Fatal(err)
	}
	dumps = append(dumps, &final)

	sawPartial := false
	for di, buf := range dumps {
		nb := mustOpen(t)
		if err := nb.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("dump %d does not load: %v", di, err)
		}
		if probs := nb.CheckConsistency(); len(probs) != 0 {
			t.Fatalf("dump %d inconsistent after load: %v", di, probs)
		}
		res := nb.MustQuery(`retrieve (E.name, E.age, E.salary) from E in Employees where E.age >= 1000`)
		n := len(res.Rows)
		if n > 0 && n < writes {
			sawPartial = true
		}
		seen := map[string]bool{}
		for _, row := range res.Rows {
			if row[1].String() != row[2].String() {
				t.Fatalf("dump %d: torn tuple %v: age %s != salary %s", di, row[0], row[1], row[2])
			}
			seen[strings.Trim(row[0].String(), `"`)] = true
		}
		// A consistent point in time holds exactly the first n appends.
		for i := 0; i < n; i++ {
			if !seen[fmt.Sprintf("W%d", i)] {
				t.Fatalf("dump %d: %d writer rows but W%d missing: not a prefix", di, n, i)
			}
		}
	}
	if n := len(dumps); n < 2 {
		t.Fatalf("only %d dumps taken", n)
	}
	_ = sawPartial // mid-flight dumps are timing-dependent; the final dump always checks writes
}

// TestConcurrentDDLWithPreparedExec: prepared statements revalidate
// against the catalog version under the shrunk statement lock. DDL
// churning the catalog from one session while another hammers a
// prepared Exec must never produce an error or a stale answer.
func TestConcurrentDDLWithPreparedExec(t *testing.T) {
	db := mustOpen(t)
	loadCompany(t, db)
	st, err := db.Prepare(`retrieve (E.name) from E in Employees where E.salary > $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want := st.MustExec(80).String()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		ddl := db.NewSession()
		for i := 0; i < 12; i++ {
			if _, err := ddl.Exec(fmt.Sprintf(`define index ddl_ix%d on Employees (salary)`, i)); err != nil {
				t.Errorf("ddl: %v", err)
				return
			}
			if _, err := ddl.Exec(fmt.Sprintf("create DDLTmp%d : int4", i)); err != nil {
				t.Errorf("ddl create: %v", err)
				return
			}
			if _, err := ddl.Exec(fmt.Sprintf("drop DDLTmp%d", i)); err != nil {
				t.Errorf("ddl drop: %v", err)
				return
			}
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				res, err := st.Exec(80)
				if err != nil {
					t.Errorf("prepared exec %d: %v", g, err)
					return
				}
				if got := res.String(); got != want {
					t.Errorf("prepared exec %d: answer changed under DDL:\ngot  %q\nwant %q", g, got, want)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
}
