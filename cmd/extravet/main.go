// Extravet runs the engine's static-analysis suite over the repository:
//
//	go run ./cmd/extravet ./...
//
// It loads the matched packages (plus every main-module dependency, so
// cross-package facts like "transitively bumps Store.Version" resolve),
// runs the seven analyzers from internal/lint, prints findings sorted
// by file, line and column in the standard file:line:col format, and
// exits 1 if (and only if) anything was reported: loader warnings go to
// stderr but never fail the run, so CI failures always mean findings.
//
// Flags:
//
//	-run name,name   run only the named analyzers
//	-list            print the analyzer names and exit
//	-tags a,b        build tags for package loading (e.g. deadlockcheck)
//	-json            print findings as a JSON array instead of text
//	-time            print per-analyzer wall time to stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonDiag is one finding in -json mode, shaped for tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	tags := flag.String("tags", "", "comma-separated build tags to load packages with")
	asJSON := flag.Bool("json", false, "print findings as JSON")
	timing := flag.Bool("time", false, "print per-analyzer wall time to stderr")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runList != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "extravet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	res, err := lint.Load(".", patterns, tagList...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "extravet: %v\n", err)
		os.Exit(2)
	}
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "extravet: warning: %s\n", w)
	}

	// Lint fixtures contain deliberate violations; never report them on
	// a real run.
	var report []string
	for _, path := range res.Matched {
		if strings.Contains(path, "internal/lint/fixtures") {
			continue
		}
		report = append(report, path)
	}

	diags, times := lint.Run(res.Prog, analyzers, report)
	if *timing {
		for _, t := range times {
			fmt.Fprintf(os.Stderr, "extravet: %-12s %8.3fs\n", t.Name, t.Elapsed.Seconds())
		}
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			pos := res.Prog.Fset.Position(d.Pos)
			out = append(out, jsonDiag{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "extravet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", res.Prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "extravet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
