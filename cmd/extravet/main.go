// Extravet runs the engine's static-analysis suite over the repository:
//
//	go run ./cmd/extravet ./...
//
// It loads the matched packages (plus every main-module dependency, so
// cross-package facts like "transitively bumps Store.Version" resolve),
// runs the four analyzers from internal/lint, prints findings in the
// standard file:line:col format, and exits 1 if anything was reported.
//
// Flags:
//
//	-run name,name   run only the named analyzers
//	-list            print the analyzer names and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runList != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "extravet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "extravet: %v\n", err)
		os.Exit(2)
	}

	// Lint fixtures contain deliberate violations; never report them on
	// a real run.
	var report []string
	for _, path := range res.Matched {
		if strings.Contains(path, "internal/lint/fixtures") {
			continue
		}
		report = append(report, path)
	}

	diags := lint.Run(res.Prog, analyzers, report)
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", res.Prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "extravet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
