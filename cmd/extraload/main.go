// Command extraload generates and loads the synthetic company workload
// into an EXTRA/EXCESS database, then prints summary statistics. It is
// the loader half of the benchmark harness; cmd/extrabench times the
// queries.
//
// Usage:
//
//	extraload [-emps 5000] [-depts 25] [-kids 3] [-floors 5] [-seed 1]
//	          [-file pages.db] [-pool 4096] [-verify] [-dump snapshot.xd]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	extra "repro"
	"repro/internal/workload"
)

func main() {
	emps := flag.Int("emps", 5000, "number of employees")
	depts := flag.Int("depts", 25, "number of departments")
	kids := flag.Int("kids", 3, "max kids per employee")
	floors := flag.Int("floors", 5, "number of floors")
	seed := flag.Int64("seed", 1, "random seed")
	file := flag.String("file", "", "back pages with this file")
	pool := flag.Int("pool", 4096, "buffer pool pages")
	verify := flag.Bool("verify", false, "run consistency queries after loading")
	dump := flag.String("dump", "", "write a snapshot of the loaded database to this file")
	flag.Parse()

	var opts []extra.Option
	if *file != "" {
		opts = append(opts, extra.WithFileStore(*file))
	}
	opts = append(opts, extra.WithPoolSize(*pool))
	db, err := extra.Open(opts...)
	if err != nil {
		fail(err)
	}
	defer db.Close()

	start := time.Now()
	_, err = workload.Load(db, workload.Params{
		Departments: *depts,
		Employees:   *emps,
		MaxKids:     *kids,
		Floors:      *floors,
		Seed:        *seed,
	})
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	res := db.MustQuery(`retrieve (emps = count(Employees), kids = count(Employees.kids), depts = count(Departments))`)
	fmt.Printf("loaded in %v\n", elapsed)
	fmt.Print(res)
	st := db.PoolStats()
	fmt.Printf("pool: hits=%d misses=%d evictions=%d\n", st.Hits, st.Misses, st.Evictions)

	if *dump != "" {
		if err := db.DumpFile(*dump); err != nil {
			fail(err)
		}
		fmt.Printf("snapshot written to %s\n", *dump)
	}
	if *verify {
		checks := []struct{ name, q, want string }{
			{"every employee has a department",
				`retrieve (n = count(E.name)) from E in Employees where E.dept is null`, "0"},
			{"salaries are non-negative",
				`retrieve (n = count(E.name)) from E in Employees where E.salary < 0`, "0"},
			{"kid ages are in range",
				`retrieve (n = count(K.name)) from K in Employees.kids where K.age < 1 or K.age > 17`, "0"},
		}
		for _, c := range checks {
			res, err := db.Query(c.q)
			if err != nil {
				fail(err)
			}
			got := res.Rows[0][0].String()
			status := "ok"
			if got != c.want {
				status = "FAIL (" + got + ")"
			}
			fmt.Printf("verify: %-40s %s\n", c.name, status)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "extraload:", err)
	os.Exit(1)
}
