package main

import (
	"testing"

	extra "repro"
)

func TestCompleteStatement(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`retrieve (E.name)`, true},
		{`retrieve (E.name`, false},
		{`define type P: ( a: int4`, false},
		{`define type P: ( a: int4 )`, true},
		{`append to X (s = "unterminated`, false},
		{`append to X (s = "ok)")`, true},
		{`retrieve (x = {1, 2})`, true},
		{`retrieve (x = {1, 2)`, false}, // unbalanced mix still counts depth
		{`append (s = "quote \" inside")`, true},
	}
	for _, c := range cases {
		if got := completeStatement(c.src); got != c.want {
			t.Errorf("completeStatement(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestMetaCommands(t *testing.T) {
	db := openTestDB(t)
	sess := db.NewSession()
	// All meta commands run without touching stdin; \quit returns false.
	for _, cmd := range []string{
		`\help`, `\types`, `\type Person`, `\type NoSuch`, `\vars`, `\adts`,
		`\stats`, `\stats json`, `\optimizer off`, `\optimizer on`, `\explain retrieve (1)`,
		`\analyze retrieve (P.name) from P in People`,
		`\analyze json retrieve (P.name) from P in People`,
		`\analyze`, `\slow`, `\user`,
		`\explain`, `\type`, `\bogus`,
		`\prepare byname retrieve (P.name) from P in People where P.name = $1`,
		`\prepared`, `\exec byname "Ann"`, `\exec byname`, `\exec nosuch`,
		`\deallocate byname`, `\deallocate byname`, `\prepare`, `\exec`, `\deallocate`,
	} {
		if !meta(db, sess, cmd) {
			t.Errorf("meta(%q) requested exit", cmd)
		}
	}
	if meta(db, sess, `\quit`) || meta(db, sess, `\q`) {
		t.Error("\\quit did not request exit")
	}
}

func TestShellArgs(t *testing.T) {
	got, err := shellArgs(`42 3.5 "two words" true bare "esc \" q"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{42, 3.5, "two words", true, "bare", `esc " q`}
	if len(got) != len(want) {
		t.Fatalf("shellArgs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arg %d = %#v, want %#v", i, got[i], want[i])
		}
	}
	if _, err := shellArgs(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
}

func openTestDB(t *testing.T) *extra.DB {
	t.Helper()
	db, err := extra.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.MustExec(`define type Person: ( name: varchar ) create People : { own Person }`)
	return db
}
