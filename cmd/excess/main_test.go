package main

import (
	"testing"

	extra "repro"
)

func TestCompleteStatement(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`retrieve (E.name)`, true},
		{`retrieve (E.name`, false},
		{`define type P: ( a: int4`, false},
		{`define type P: ( a: int4 )`, true},
		{`append to X (s = "unterminated`, false},
		{`append to X (s = "ok)")`, true},
		{`retrieve (x = {1, 2})`, true},
		{`retrieve (x = {1, 2)`, false}, // unbalanced mix still counts depth
		{`append (s = "quote \" inside")`, true},
	}
	for _, c := range cases {
		if got := completeStatement(c.src); got != c.want {
			t.Errorf("completeStatement(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestMetaCommands(t *testing.T) {
	db := openTestDB(t)
	sess := db.NewSession()
	// All meta commands run without touching stdin; \quit returns false.
	for _, cmd := range []string{
		`\help`, `\types`, `\type Person`, `\type NoSuch`, `\vars`, `\adts`,
		`\stats`, `\stats json`, `\optimizer off`, `\optimizer on`, `\explain retrieve (1)`,
		`\analyze retrieve (P.name) from P in People`,
		`\analyze json retrieve (P.name) from P in People`,
		`\analyze`, `\slow`, `\user`,
		`\explain`, `\type`, `\bogus`,
	} {
		if !meta(db, sess, cmd) {
			t.Errorf("meta(%q) requested exit", cmd)
		}
	}
	if meta(db, sess, `\quit`) || meta(db, sess, `\q`) {
		t.Error("\\quit did not request exit")
	}
}

func openTestDB(t *testing.T) *extra.DB {
	t.Helper()
	db, err := extra.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.MustExec(`define type Person: ( name: varchar ) create People : { own Person }`)
	return db
}
