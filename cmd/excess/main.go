// Command excess is an interactive shell for the EXTRA/EXCESS database:
// a QUEL-style read-eval-print loop over the extra package, with
// meta-commands for catalog introspection.
//
// Usage:
//
//	excess [-file pages.db] [-wal dir] [-walsync group|each|none] [-pool 256] [-load snapshot.xd] [-slow 1ms] [-trace N] [-serve addr] [script.xs ...]
//
// With script arguments the files are executed in order and the shell
// exits; otherwise an interactive prompt reads statements from stdin.
// Statements may span lines; a line ending in ";" (or a complete single
// line) executes. Meta-commands:
//
//	\types          list schema types
//	\type NAME      show a type's definition
//	\vars           list database variables
//	\adts           list abstract data types
//	\stats [json]   engine metrics and buffer pool statistics
//	\explain QUERY  show the optimizer's plan for a retrieve
//	\analyze [json] QUERY
//	                execute a retrieve and show per-operator actuals
//	\slow           list slow-query log entries (with session and trace attribution)
//	\trace on|off|last|every N
//	                control statement-trace sampling; \trace last renders
//	                the most recent sampled statement's span tree
//	\user [NAME]    show or switch the shell session's user
//	\checkpoint     write a checkpoint and truncate the write-ahead log
//	\wal            show write-ahead-log LSN watermarks
//	\optimizer on|off
//	\prepare NAME STMT
//	                prepare a statement with $1..$n parameter slots
//	\exec NAME [ARG ...]
//	                execute a prepared statement (args: int, float,
//	                "quoted string", true/false, or bare word)
//	\prepared       list prepared statements
//	\deallocate NAME
//	                close a prepared statement
//	\quit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	extra "repro"
	"repro/internal/trace"
)

func main() {
	file := flag.String("file", "", "back pages with this file instead of memory")
	walDir := flag.String("wal", "", "write-ahead-log directory (enables durability and crash recovery)")
	walSync := flag.String("walsync", "group", "WAL sync mode: group, each or none")
	pool := flag.Int("pool", 256, "buffer pool size in pages")
	load := flag.String("load", "", "replay a Dump snapshot before starting")
	slow := flag.Duration("slow", 0, "slow-query log threshold for \\slow (0 = default 100ms)")
	traceN := flag.Int("trace", 0, "sample every Nth statement into the trace ring (0 = off)")
	serve := flag.String("serve", "", "serve the ops plane (/metrics, /statz, /traces, pprof) on this address")
	flag.Parse()

	var opts []extra.Option
	if *file != "" {
		opts = append(opts, extra.WithFileStore(*file))
	}
	if *walDir != "" {
		mode, err := extra.ParseWALSyncMode(*walSync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "excess:", err)
			os.Exit(1)
		}
		opts = append(opts, extra.WithWAL(*walDir), extra.WithWALSync(mode))
	}
	opts = append(opts, extra.WithPoolSize(*pool))
	if *slow > 0 {
		opts = append(opts, extra.WithSlowQueryLog(*slow, 64))
	}
	if *traceN > 0 {
		opts = append(opts, extra.WithTracing(*traceN, 64))
	}
	if *serve != "" {
		opts = append(opts, extra.WithDebugServer(*serve))
	}
	db, err := extra.Open(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "excess:", err)
		os.Exit(1)
	}
	defer db.Close()
	if *serve != "" {
		fmt.Fprintln(os.Stderr, "excess: ops plane on http://"+db.DebugAddr())
	}

	if *load != "" {
		if err := db.LoadFile(*load); err != nil {
			fmt.Fprintln(os.Stderr, "excess: load:", err)
			os.Exit(1)
		}
	}

	// The shell is one client of the database: it runs its statements
	// through its own session (user identity, range declarations), the
	// same handle a server would hand each connection.
	sess := db.NewSession()

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "excess:", err)
				os.Exit(1)
			}
			if res, err := sess.Exec(string(src)); err != nil {
				fmt.Fprintf(os.Stderr, "excess: %s: %v\n", path, err)
				os.Exit(1)
			} else if res != nil {
				fmt.Print(res)
			}
		}
		return
	}

	fmt.Println("EXCESS interactive shell — EXTRA data model for EXODUS")
	fmt.Println(`Type statements (end with ";"), or \help.`)
	repl(db, sess, os.Stdin)
}

func repl(db *extra.DB, sess *extra.Session, in *os.File) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("excess> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !meta(db, sess, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") || completeStatement(buf.String()) {
			src := buf.String()
			buf.Reset()
			if res, err := sess.Exec(src); err != nil {
				fmt.Println("error:", err)
			} else if res != nil {
				fmt.Print(res)
			} else {
				fmt.Println("ok")
			}
		}
		prompt()
	}
}

// completeStatement applies a cheap heuristic: execute once parentheses
// and braces balance and the input does not end mid-clause.
func completeStatement(src string) bool {
	depth := 0
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '{', '[':
			depth++
		case ')', '}', ']':
			depth--
		}
	}
	return depth <= 0 && !inStr
}

// prepared holds the shell's named prepared statements (\prepare /
// \exec / \deallocate). The shell is single-threaded, so a plain map.
var prepared = map[string]*extra.Stmt{}

// shellArgs tokenizes \exec arguments: double-quoted strings (spaces
// allowed, \" escapes), integers, floats, true/false, or bare words
// passed through as strings.
func shellArgs(s string) ([]any, error) {
	var args []any
	for i := 0; i < len(s); {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '"' {
			var b strings.Builder
			j := i + 1
			for ; j < len(s) && s[j] != '"'; j++ {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				b.WriteByte(s[j])
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated string in arguments")
			}
			args = append(args, b.String())
			i = j + 1
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		tok := s[i:j]
		i = j
		switch {
		case tok == "true":
			args = append(args, true)
		case tok == "false":
			args = append(args, false)
		default:
			if n, err := strconv.Atoi(tok); err == nil {
				args = append(args, n)
			} else if f, err := strconv.ParseFloat(tok, 64); err == nil {
				args = append(args, f)
			} else {
				args = append(args, tok)
			}
		}
	}
	return args, nil
}

// meta handles backslash commands; it reports false on \quit.
func meta(db *extra.DB, sess *extra.Session, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case `\quit`, `\q`:
		return false
	case `\help`, `\h`:
		fmt.Println(`\types \type NAME \vars \adts \stats [json] \explain QUERY \analyze [json] QUERY \slow \trace on|off|last|every N \user [NAME] \checkpoint \wal \optimizer on|off \prepare NAME STMT \exec NAME [ARG ...] \prepared \deallocate NAME \quit`)
	case `\types`:
		for _, n := range db.Catalog().TupleTypeNames() {
			fmt.Println(" ", n)
		}
	case `\type`:
		if len(fields) < 2 {
			fmt.Println("usage: \\type NAME")
			break
		}
		if tt, ok := db.Catalog().TupleType(fields[1]); ok {
			fmt.Println(tt.DDL())
		} else {
			fmt.Println("no such type")
		}
	case `\vars`:
		for _, n := range db.Catalog().VarNames() {
			if v, ok := db.Catalog().Var(n); ok {
				fmt.Printf("  %s : %s\n", n, v.Comp.Type)
			}
		}
	case `\adts`:
		for _, n := range db.Registry().Names() {
			c, _ := db.Registry().Lookup(n)
			fmt.Printf("  %s (%s)\n", n, strings.Join(c.FuncNames(), ", "))
		}
	case `\explain`:
		q := strings.TrimSpace(strings.TrimPrefix(cmd, `\explain`))
		if q == "" {
			fmt.Println("usage: \\explain retrieve (...)")
			break
		}
		out, err := db.Explain(q)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case `\analyze`:
		q := strings.TrimSpace(strings.TrimPrefix(cmd, `\analyze`))
		asJSON := false
		if rest, ok := strings.CutPrefix(q, "json "); ok {
			asJSON, q = true, strings.TrimSpace(rest)
		}
		if q == "" {
			fmt.Println("usage: \\analyze [json] retrieve (...)")
			break
		}
		var out string
		var err error
		if asJSON {
			out, err = db.ExplainAnalyzeJSON(q)
		} else {
			out, err = db.ExplainAnalyze(q)
		}
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println(strings.TrimRight(out, "\n"))
		}
	case `\stats`:
		if len(fields) == 2 && fields[1] == "json" {
			raw, err := json.MarshalIndent(db.MetricsSnapshot(), "", "  ")
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println(string(raw))
			}
			break
		}
		st := db.PoolStats()
		fmt.Printf("  pool: hits=%d misses=%d evictions=%d writebacks=%d hit-rate=%.1f%%\n",
			st.Hits, st.Misses, st.Evictions, st.WriteBacks, st.HitRate()*100)
		if err := db.MetricsSnapshot().WriteText(os.Stdout); err != nil {
			fmt.Println("error:", err)
		}
	case `\slow`:
		entries := db.SlowQueries()
		if len(entries) == 0 {
			fmt.Println("  slow-query log is empty")
			break
		}
		for _, e := range entries {
			link := ""
			if e.TraceID != 0 {
				link = fmt.Sprintf(" trace=%d", e.TraceID)
			}
			fmt.Printf("  [session %d] %s  total=%v rows=%d (parse=%v check=%v plan=%v execute=%v)%s\n",
				e.Session, strings.Join(strings.Fields(e.Src), " "), e.Total, e.Rows,
				e.Parse, e.Check, e.Plan, e.Execute, link)
		}
	case `\trace`:
		if len(fields) < 2 {
			fmt.Printf("  sampling every=%d, %d traces retained; usage: \\trace on|off|last|every N\n",
				db.Tracer().Every(), len(db.Traces()))
			break
		}
		switch fields[1] {
		case "on":
			db.SetTraceSampling(1)
			fmt.Println("  tracing every statement")
		case "off":
			db.SetTraceSampling(0)
			fmt.Println("  tracing off")
		case "every":
			if len(fields) < 3 {
				fmt.Println("usage: \\trace every N")
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				fmt.Println("error: N must be a non-negative integer")
				break
			}
			db.SetTraceSampling(n)
			fmt.Printf("  tracing 1 in %d statements\n", n)
		case "last":
			tr := db.LastTrace()
			if tr == nil {
				fmt.Println("  no trace retained (is sampling on? try \\trace on)")
				break
			}
			fmt.Print(trace.Render(tr))
		default:
			fmt.Println("usage: \\trace on|off|last|every N")
		}
	case `\user`:
		if len(fields) < 2 {
			fmt.Printf("  session %d, user %s\n", sess.ID(), sess.CurrentUser())
			break
		}
		if err := sess.SetUser(fields[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("  now %s\n", fields[1])
		}
	case `\checkpoint`:
		if err := db.Checkpoint(); err != nil {
			fmt.Println("error:", err)
		} else {
			next, durable := db.WALStats()
			fmt.Printf("  checkpoint written; log truncated (next lsn %d, durable %d)\n", next, durable)
		}
	case `\wal`:
		next, durable := db.WALStats()
		if next == 0 {
			fmt.Println("  no write-ahead log (start with -wal DIR)")
			break
		}
		fmt.Printf("  next lsn %d, durable through %d\n", next, durable)
	case `\prepare`:
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, `\prepare`))
		name, src, ok := strings.Cut(rest, " ")
		if !ok || name == "" || strings.TrimSpace(src) == "" {
			fmt.Println("usage: \\prepare NAME STMT")
			break
		}
		st, err := sess.Prepare(strings.TrimSpace(src))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if old := prepared[name]; old != nil {
			old.Close()
		}
		prepared[name] = st
		fmt.Printf("  prepared %s (%d parameters)\n", name, st.NumParams())
	case `\exec`:
		if len(fields) < 2 {
			fmt.Println("usage: \\exec NAME [ARG ...]")
			break
		}
		st := prepared[fields[1]]
		if st == nil {
			fmt.Printf("no prepared statement %q; see \\prepared\n", fields[1])
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(cmd, `\exec`)), fields[1]))
		args, err := shellArgs(rest)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		res, err := st.Exec(args...)
		if err != nil {
			fmt.Println("error:", err)
		} else if res != nil {
			fmt.Print(res)
		} else {
			fmt.Println("ok")
		}
	case `\prepared`:
		if len(prepared) == 0 {
			fmt.Println("  no prepared statements")
			break
		}
		names := make([]string, 0, len(prepared))
		for n := range prepared {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s (%d parameters): %s\n", n, prepared[n].NumParams(),
				strings.Join(strings.Fields(prepared[n].Src()), " "))
		}
	case `\deallocate`:
		if len(fields) < 2 {
			fmt.Println("usage: \\deallocate NAME")
			break
		}
		st := prepared[fields[1]]
		if st == nil {
			fmt.Printf("no prepared statement %q\n", fields[1])
			break
		}
		st.Close()
		delete(prepared, fields[1])
		fmt.Printf("  deallocated %s\n", fields[1])
	case `\optimizer`:
		if len(fields) == 2 && fields[1] == "off" {
			db.SetOptimizer(extra.OptimizerOptions{
				NoPushdown: true, NoIndexSelect: true, NoReorder: true,
				NoHashJoin: true, NoDerefCache: true, NoCompiledExprs: true,
			})
			fmt.Println("  optimizer off (naive plans)")
		} else {
			db.SetOptimizer(extra.OptimizerOptions{})
			fmt.Println("  optimizer on")
		}
	default:
		fmt.Println("unknown meta command; try \\help")
	}
	return true
}
