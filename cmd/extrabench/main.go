// Command extrabench regenerates every experiment in EXPERIMENTS.md: the
// functional reproductions of the paper's figures (F1–F7) and the
// performance characterization of its design choices (B1–B13, B15).
//
// Usage:
//
//	extrabench [-exp all|F1,...,B15] [-reps 20] [-par N] [-traceout out.json]
//
// Each experiment prints the table rows recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	extra "repro"
	"repro/internal/trace"
	"repro/internal/workload"
)

var reps = flag.Int("reps", 20, "timing repetitions per measurement")

var par = flag.Int("par", 0,
	"B12: measure only this parallelism level (0 = the 1, 4, 8 ladder)")

var statsMode = flag.String("stats", "",
	`dump the metrics registry of each experiment's last database after its phase: "text" or "json"`)

var traceOut = flag.String("traceout", "",
	"B15: write the always-on pass's retained statement traces to this file as Chrome trace_event JSON")

// lastDB tracks the most recently opened database so -stats can dump
// its registry when the experiment finishes (counters stay readable
// after Close).
var lastDB *extra.DB

func track(db *extra.DB) *extra.DB {
	lastDB = db
	return db
}

func dumpStats(db *extra.DB) {
	switch *statsMode {
	case "json":
		raw, err := json.MarshalIndent(db.MetricsSnapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stats:", err)
			return
		}
		fmt.Println(string(raw))
	default:
		if err := db.MetricsSnapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "stats:", err)
		}
	}
}

type experiment struct {
	id    string
	title string
	run   func() error
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (F1..F7, B1..B13, B15) or all")
	flag.Parse()

	exps := []experiment{
		{"F1", "Figure 1: Person/Date schema, instances, first retrieves", figure1},
		{"F2", "Figure 2: multiple-inheritance lattice", figure2},
		{"F3", "Figure 3: conflict resolution by renaming", figure3},
		{"F4", "Figure 4: own / ref / own ref semantics", figure4},
		{"F5", "Figure 5: retrieval — implicit joins, nested sets, paths", figure5},
		{"F6", "Figure 6: aggregates, updates, quantification", figure6},
		{"F7", "Figure 7: Complex ADT dbclass and operators", figure7},
		{"B1", "implicit join vs explicit join", b1},
		{"B2", "nested set vs flattened join", b2},
		{"B3", "index vs heap scan across selectivities", b3},
		{"B4", "optimizer on vs off", b4},
		{"B5", "ADT dispatch vs built-in arithmetic", b5},
		{"B6", "own (embedded) vs ref (chased) access", b6},
		{"B7", "aggregate partitioning by / whole / over", b7},
		{"B8", "own copy vs ref share on append", b8},
		{"B9", "inheritance depth vs query cost", b9},
		{"B10", "buffer pool working-set cliff", b10},
		{"B11", "join methods: hash vs nested, deref cache on vs off", b11},
		{"B12", "parallel read throughput: sessions sharing the read lock", b12},
		{"B13", "compile-once: plan cache, prepared statements, compiled expressions", b13},
		{"B15", "tracing overhead: off vs sampled 1-in-100 vs always-on", b15},
		{"B16", "durability: group commit vs fsync-per-commit vs no WAL", b16},
	}
	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	for _, e := range exps {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("== %s — %s\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		if *statsMode != "" && lastDB != nil {
			fmt.Printf("-- %s metrics\n", e.id)
			dumpStats(lastDB)
			lastDB = nil
		}
		fmt.Println()
	}
}

func open() *extra.DB {
	db, err := extra.Open(extra.WithPoolSize(8192))
	if err != nil {
		panic(err)
	}
	return track(db)
}

// openW opens a generated workload database, tracked for -stats.
func openW(p workload.Params, pool int) (*extra.DB, error) {
	db, _, err := workload.New(p, pool)
	if err != nil {
		return nil, err
	}
	return track(db), nil
}

// show runs a query and prints it with its result table.
func show(db *extra.DB, q string) error {
	res, err := db.Query(q)
	if err != nil {
		return fmt.Errorf("%s: %w", q, err)
	}
	fmt.Println("  " + q)
	for _, line := range strings.Split(strings.TrimRight(res.String(), "\n"), "\n") {
		fmt.Println("    " + line)
	}
	return nil
}

// timeQuery reports the median wall time of a query over reps runs.
func timeQuery(db *extra.DB, q string) (time.Duration, int, error) {
	var durs []time.Duration
	rows := 0
	for i := 0; i < *reps; i++ {
		start := time.Now()
		res, err := db.Query(q)
		if err != nil {
			return 0, 0, fmt.Errorf("%s: %w", q, err)
		}
		durs = append(durs, time.Since(start))
		rows = len(res.Rows)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2], rows, nil
}

func row(cols ...any) {
	fmt.Print("  ")
	for i, c := range cols {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%-24v", c)
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Figures

func figure1() error {
	db := open()
	defer db.Close()
	db.MustExec(`
		define type Person:
		  ( name: char[20], ssnum: int4, birthday: Date, kids: { own ref Person } )
		define type Employee inherits Person: ( salary: int4 )
		create Employees : { own Employee }
		create StarEmployee : ref Employee
		create TopTen : [10] ref Employee
		create Today : Date
		set Today = date("12/07/1987")
		append to Employees (name = "Ann", ssnum = 1, salary = 90, birthday = date("01/15/1955"))
		append to Employees (name = "Ben", ssnum = 2, salary = 70, birthday = date("03/02/1960"))
		set StarEmployee = E from E in Employees where E.name = "Ann"
		set TopTen[1] = E from E in Employees where E.name = "Ann"
	`)
	for _, q := range []string{
		`retrieve (Today)`,
		`retrieve (StarEmployee.name, StarEmployee.salary)`,
		`retrieve (TopTen[1].name, TopTen[1].salary)`,
		`retrieve (age_days = Today - StarEmployee.birthday)`,
	} {
		if err := show(db, q); err != nil {
			return err
		}
	}
	return nil
}

func figure2() error {
	db := open()
	defer db.Close()
	db.MustExec(`
		define type Person: ( name: varchar, age: int4 )
		define type Employee inherits Person: ( salary: int4 )
		define type Student inherits Person: ( gpa: float8 )
		define type StudentEmp inherits Employee, Student: ( hours: int4 )
		create StudentEmps : { own StudentEmp }
		append to StudentEmps (name = "Pat", age = 22, salary = 10, gpa = 3.5, hours = 20)
	`)
	tt, _ := db.Catalog().TupleType("StudentEmp")
	fmt.Println("  StudentEmp attributes (inherited along both lattice paths):")
	for _, a := range tt.Attrs() {
		fmt.Printf("    %-8s from %s\n", a.Name, tt.Origin(a.Name))
	}
	return show(db, `retrieve (S.name, S.gpa, S.salary) from S in StudentEmps`)
}

func figure3() error {
	db := open()
	defer db.Close()
	db.MustExec(`
		define type Person: ( name: varchar )
		define type Department: ( dname: varchar )
		define type School: ( sname: varchar )
		define type Employee inherits Person: ( dept: ref Department )
		define type Student inherits Person: ( dept: ref School )
	`)
	_, err := db.Exec(`define type StudentEmp inherits Employee, Student: ( hours: int4 )`)
	fmt.Printf("  unresolved conflict rejected: %v\n", err)
	db.MustExec(`define type StudentEmp inherits Employee, Student with dept renamed school_dept: ( hours: int4 )`)
	tt, _ := db.Catalog().TupleType("StudentEmp")
	fmt.Printf("  resolved with rename: dept from %s, school_dept from %s\n",
		tt.Origin("dept"), tt.Origin("school_dept"))
	return nil
}

func figure4() error {
	db := open()
	defer db.Close()
	db.MustExec(`
		define type Child: ( cname: varchar )
		define type CompParent: ( pname: varchar, kids: { own ref Child } )
		create CompParents : { own CompParent }
		append to CompParents (pname = "c1")
		append to CompParents (pname = "c2")
		append to P.kids (cname = "kid") from P in CompParents where P.pname = "c1"
	`)
	_, err := db.Exec(`append to P.kids (K) from P in CompParents, K in CompParents.kids where P.pname = "c2"`)
	fmt.Printf("  composite exclusivity enforced: %v\n", err)
	db.MustExec(`delete P from P in CompParents where P.pname = "c1"`)
	if err := show(db, `retrieve (n = count(CompParents.kids))`); err != nil {
		return err
	}
	fmt.Println("  (owned children destroyed with their parent)")
	return nil
}

func loadSmallCompany(db *extra.DB) {
	if _, err := workload.Load(db, workload.Params{Departments: 3, Employees: 12, MaxKids: 2, Floors: 2, MaxSalary: 100, Seed: 42}); err != nil {
		panic(err)
	}
}

func figure5() error {
	db := open()
	defer db.Close()
	loadSmallCompany(db)
	for _, q := range []string{
		`retrieve (E.name, E.salary) from E in Employees where E.dept.floor = 2`,
		`retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2`,
		`retrieve (E.name, D.dname) from E in Employees, D in Departments where E.dept is D and E.salary > 80`,
	} {
		if err := show(db, q); err != nil {
			return err
		}
	}
	return nil
}

func figure6() error {
	db := open()
	defer db.Close()
	loadSmallCompany(db)
	db.MustExec(`range of AE is all Employees`)
	for _, q := range []string{
		`retrieve (total = sum(Employees.salary))`,
		`retrieve (f = E.dept.floor, a = avg(E.salary by E.dept.floor)) from E in Employees`,
		`retrieve (distinct_depts = count(E.dept.dname over E.dept.dname)) from E in Employees`,
		`retrieve (D.dname) from D in Departments where AE.dept isnot D or AE.salary > 10`,
	} {
		if err := show(db, q); err != nil {
			return err
		}
	}
	db.MustExec(`replace E (salary = E.salary + 10) from E in Employees where E.dept.floor = 2`)
	return show(db, `retrieve (raised_total = sum(Employees.salary))`)
}

func figure7() error {
	db := open()
	defer db.Close()
	db.MustExec(`
		define type CnumPair: ( val1: Complex, val2: Complex )
		create Pairs : { own CnumPair }
		append to Pairs (val1 = complex(1.0, 2.0), val2 = complex(3.0, -1.0))
	`)
	for _, q := range []string{
		`retrieve (s = P.val1 + P.val2) from P in Pairs`,
		`retrieve (s = Add(P.val1, P.val2)) from P in Pairs`,
		`retrieve (m = Magnitude(P.val1 * P.val2)) from P in Pairs`,
	} {
		if err := show(db, q); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Benchmarks

func b1() error {
	db, err := openW(workload.Params{Departments: 20, Employees: 2000, Seed: 1}, 8192)
	if err != nil {
		return err
	}
	defer db.Close()
	row("variant", "median", "rows")
	d, n, err := timeQuery(db, `retrieve (E.name) from E in Employees where E.dept.floor = 2`)
	if err != nil {
		return err
	}
	row("implicit (ref chase)", d, n)
	d, n, err = timeQuery(db, `retrieve (E.name) from E in Employees, D in Departments where E.dept is D and D.floor = 2`)
	if err != nil {
		return err
	}
	row("explicit join", d, n)
	return nil
}

func b2() error {
	db, err := openW(workload.Params{Departments: 10, Employees: 500, MaxKids: 4, Seed: 2}, 8192)
	if err != nil {
		return err
	}
	defer db.Close()
	db.MustExec(`
		define type ChildRow: ( cname: varchar, parent: ref Employee )
		create Children : { own ChildRow }
		append to Children (cname = K.name, parent = E) from E in Employees, K in E.kids
	`)
	row("variant", "median", "rows")
	d, n, err := timeQuery(db, `retrieve (E.name, n = count(E.kids)) from E in Employees`)
	if err != nil {
		return err
	}
	row("nested own-ref set", d, n)
	d, n, err = timeQuery(db, `retrieve (E.name) from E in Employees, K in Children where K.parent is E`)
	if err != nil {
		return err
	}
	row("flattened join", d, n)
	return nil
}

func b3() error {
	db, err := openW(workload.Params{Departments: 10, Employees: 5000, MaxSalary: 100000, Seed: 3}, 16384)
	if err != nil {
		return err
	}
	defer db.Close()
	row("selectivity", "heap scan", "index probe", "rows")
	for _, cut := range []int{1000, 10000, 50000, 100001} {
		q := fmt.Sprintf(`retrieve (E.name) from E in Employees where E.salary < %d`, cut)
		db.SetOptimizer(extra.OptimizerOptions{NoIndexSelect: true})
		scan, n, err := timeQuery(db, q)
		if err != nil {
			return err
		}
		db.SetOptimizer(extra.OptimizerOptions{})
		if _, ok := db.Catalog().Index("emp_sal"); !ok {
			db.MustExec(`define index emp_sal on Employees (salary)`)
		}
		probe, _, err := timeQuery(db, q)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("%d%%", cut/1000), scan, probe, n)
	}
	return nil
}

func b4() error {
	db, err := openW(workload.Params{Departments: 50, Employees: 2000, MaxSalary: 100000, Seed: 4}, 8192)
	if err != nil {
		return err
	}
	defer db.Close()
	db.MustExec(`define index emp_sal on Employees (salary)`)
	q := `retrieve (E.name, D.dname) from E in Employees, D in Departments where E.salary < 1000 and E.dept is D and D.floor = 2`
	row("plan", "median", "rows")
	d, n, err := timeQuery(db, q)
	if err != nil {
		return err
	}
	row("optimized", d, n)
	db.SetOptimizer(extra.OptimizerOptions{NoPushdown: true, NoIndexSelect: true, NoReorder: true})
	d, _, err = timeQuery(db, q)
	if err != nil {
		return err
	}
	row("naive", d, n)
	return nil
}

func b5() error {
	db := open()
	defer db.Close()
	db.MustExec(`
		define type CRow: ( a: Complex, b: Complex )
		define type FRow: ( ax: float8, bx: float8 )
		create CRows : { own CRow }
		create FRows : { own FRow }
	`)
	for i := 0; i < 500; i++ {
		db.MustExec(fmt.Sprintf(`append to CRows (a = complex(%d.0, 1.0), b = complex(2.0, %d.0))`, i, i))
		db.MustExec(fmt.Sprintf(`append to FRows (ax = %d.0, bx = 2.0)`, i))
	}
	row("variant", "median")
	d, _, err := timeQuery(db, `retrieve (s = R.a + R.b) from R in CRows`)
	if err != nil {
		return err
	}
	row("Complex ADT +", d)
	d, _, err = timeQuery(db, `retrieve (s = R.ax + R.bx) from R in FRows`)
	if err != nil {
		return err
	}
	row("float8 +", d)
	return nil
}

func b6() error {
	db := open()
	defer db.Close()
	db.MustExec(`
		define type DeptV: ( dname: varchar, floor: int4 )
		define type EmpOwn: ( name: varchar, dept: own DeptV )
		define type EmpRef: ( name: varchar, dept: ref DeptV )
		create DeptVs : { own DeptV }
		create EmpsOwn : { own EmpOwn }
		create EmpsRef : { own EmpRef }
	`)
	var depts []extra.Obj
	for i := 0; i < 20; i++ {
		d, err := db.Insert("DeptVs", extra.Attrs{"dname": fmt.Sprintf("d%d", i), "floor": i%5 + 1})
		if err != nil {
			return err
		}
		depts = append(depts, d)
	}
	for i := 0; i < 2000; i++ {
		if _, err := db.Insert("EmpsOwn", extra.Attrs{"name": fmt.Sprintf("e%d", i),
			"dept": extra.Attrs{"dname": fmt.Sprintf("d%d", i%20), "floor": i%5 + 1}}); err != nil {
			return err
		}
		if _, err := db.Insert("EmpsRef", extra.Attrs{"name": fmt.Sprintf("e%d", i), "dept": depts[i%20]}); err != nil {
			return err
		}
	}
	row("variant", "median", "rows")
	d, n, err := timeQuery(db, `retrieve (E.name) from E in EmpsOwn where E.dept.floor = 2`)
	if err != nil {
		return err
	}
	row("own (embedded)", d, n)
	d, n, err = timeQuery(db, `retrieve (E.name) from E in EmpsRef where E.dept.floor = 2`)
	if err != nil {
		return err
	}
	row("ref (chased)", d, n)
	return nil
}

func b7() error {
	db, err := openW(workload.Params{Departments: 20, Employees: 2000, Seed: 7}, 8192)
	if err != nil {
		return err
	}
	defer db.Close()
	row("aggregate", "median", "rows")
	for _, c := range []struct{ label, q string }{
		{"by floor", `retrieve (f = E.dept.floor, a = avg(E.salary by E.dept.floor)) from E in Employees`},
		{"whole extent", `retrieve (a = avg(Employees.salary))`},
		{"over dedup", `retrieve (n = count(E.dept.dname over E.dept.dname)) from E in Employees`},
	} {
		d, n, err := timeQuery(db, c.q)
		if err != nil {
			return err
		}
		row(c.label, d, n)
	}
	return nil
}

func b8() error {
	db, err := openW(workload.Params{Departments: 5, Employees: 200, MaxKids: 8, Seed: 8}, 16384)
	if err != nil {
		return err
	}
	defer db.Close()
	db.MustExec(`create Picked : { ref Employee }`)
	db.MustExec(`create Copies : { own Employee }`)
	row("variant", "median (append of ~100 objects)")
	for _, c := range []struct{ label, q string }{
		{"own (deep copy)", `append to Copies (E) from E in Employees where E.salary > 100000`},
		{"ref (share)", `append to Picked (E) from E in Employees where E.salary > 100000`},
	} {
		var durs []time.Duration
		for i := 0; i < *reps; i++ {
			start := time.Now()
			if _, err := db.Exec(c.q); err != nil {
				return err
			}
			durs = append(durs, time.Since(start))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		row(c.label, durs[len(durs)/2])
	}
	return nil
}

func b9() error {
	row("lattice depth", "median")
	for _, depth := range []int{1, 4, 16} {
		db := open()
		db.MustExec(`define type L0: ( base: int4 )`)
		for i := 1; i <= depth; i++ {
			db.MustExec(fmt.Sprintf(`define type L%d inherits L%d: ( f%d: int4 )`, i, i-1, i))
		}
		db.MustExec(fmt.Sprintf(`create Leafs : { own L%d }`, depth))
		for i := 0; i < 500; i++ {
			if _, err := db.Insert("Leafs", extra.Attrs{"base": i}); err != nil {
				return err
			}
		}
		d, _, err := timeQuery(db, `retrieve (E.base) from E in Leafs where E.base < 50`)
		if err != nil {
			return err
		}
		row(depth, d)
		db.Close()
	}
	return nil
}

func b10() error {
	row("pool pages", "medium", "median scan", "hit rate")
	for _, medium := range []string{"memory", "file"} {
		for _, pages := range []int{16, 64, 256, 8192} {
			var opts []extra.Option
			if medium == "file" {
				f, err := os.CreateTemp("", "extra-pages-*.db")
				if err != nil {
					return err
				}
				path := f.Name()
				f.Close()
				defer os.Remove(path)
				opts = append(opts, extra.WithFileStore(path))
			}
			opts = append(opts, extra.WithPoolSize(pages))
			db, err := extra.Open(opts...)
			if err != nil {
				return err
			}
			track(db)
			if _, err := workload.Load(db, workload.Params{Departments: 10, Employees: 8000, MaxKids: 2, Seed: 10}); err != nil {
				db.Close()
				return err
			}
			db.ResetPoolStats()
			d, _, err := timeQuery(db, `retrieve (n = count(Employees))`)
			if err != nil {
				db.Close()
				return err
			}
			st := db.PoolStats()
			row(pages, medium, d, fmt.Sprintf("%.1f%%", st.HitRate()*100))
			db.Close()
		}
	}
	return nil
}

// benchRecord is one line of BENCH_joins.json: the machine-readable
// counterpart of the B11 table, consumed by CI trend tooling.
type benchRecord struct {
	Name string `json:"name"`
	NsOp int64  `json:"ns_per_op"`
	Rows int    `json:"rows"`
}

// timeQueryN is timeQuery with an explicit repetition count, for
// measurements (the quadratic nested-loop baseline) where the global
// -reps default would take minutes.
func timeQueryN(db *extra.DB, q string, n int) (time.Duration, int, error) {
	saved := *reps
	*reps = n
	defer func() { *reps = saved }()
	return timeQuery(db, q)
}

// b11 contrasts the two join access methods (hash vs nested iteration)
// and the deref cache (on vs off), then writes BENCH_joins.json so CI
// can track the numbers without scraping the table. The nested-loop
// baseline is quadratic, so it runs at a reduced scale and repetition
// count; Go benchmarks in bench_test.go cover the larger scales.
func b11() error {
	row("benchmark", "median", "rows")
	var recs []benchRecord
	rec := func(name string, d time.Duration, rows int) {
		row(name, d, rows)
		recs = append(recs, benchRecord{Name: name, NsOp: d.Nanoseconds(), Rows: rows})
	}

	// Explicit equi-join: hash access path vs pure nested iteration.
	const joinN = 1000
	db, err := openW(workload.Params{Departments: joinN, Employees: joinN, Seed: 11}, 16384)
	if err != nil {
		return err
	}
	defer db.Close()
	joinQ := `retrieve (E.name, D.dname) from E in Employees, D in Departments where E.dept is D`
	d, rows, err := timeQuery(db, joinQ)
	if err != nil {
		return err
	}
	rec("ExplicitJoinHash1k", d, rows)
	db.SetOptimizer(extra.OptimizerOptions{NoHashJoin: true, NoDerefCache: true})
	if d, rows, err = timeQueryN(db, joinQ, 3); err != nil {
		return err
	}
	rec("ExplicitJoinNested1k", d, rows)

	// Implicit-join ref chase: deref cache on vs off.
	dbr, err := openW(workload.Params{Departments: 100, Employees: 10000, Floors: 5, Seed: 12}, 16384)
	if err != nil {
		return err
	}
	defer dbr.Close()
	chaseQ := `retrieve (E.name) from E in Employees where E.dept.floor = 2`
	if d, rows, err = timeQuery(dbr, chaseQ); err != nil {
		return err
	}
	rec("RefChaseCached10k", d, rows)
	dbr.SetOptimizer(extra.OptimizerOptions{NoDerefCache: true})
	if d, rows, err = timeQuery(dbr, chaseQ); err != nil {
		return err
	}
	rec("RefChaseUncached10k", d, rows)

	raw, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_joins.json", append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_joins.json")
	return nil
}

// concRecord is one line of BENCH_concurrency.json: read throughput at
// one parallelism level. GOMAXPROCS is recorded because the speedup a
// run can show is bounded by the cores the scheduler may use — on a
// single-core host all levels collapse to lock-contention overhead.
type concRecord struct {
	Name        string  `json:"name"`
	Goroutines  int     `json:"goroutines"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Statements  int     `json:"statements"`
	TotalNs     int64   `json:"total_ns"`
	StmtsPerSec float64 `json:"stmts_per_sec"`
	Speedup     float64 `json:"speedup_vs_serial"`
	// Writer-interference columns (the MVCC oracle): per-statement read
	// latency percentiles measured with and without a concurrent bulk
	// updater. Under snapshot reads the two distributions should be
	// close; under the old statement RWMutex the p99 with a writer was
	// the writer's statement time.
	BulkWriter  bool  `json:"bulk_writer,omitempty"`
	WriterStmts int   `json:"writer_stmts,omitempty"`
	ReadP50Ns   int64 `json:"read_p50_ns,omitempty"`
	ReadP99Ns   int64 `json:"read_p99_ns,omitempty"`
}

// b12 measures read-statement throughput as goroutines are added, each
// with its own session, over the Figure 5 implicit-join workload. All
// statements are retrieves, so every goroutine holds the shared side of
// the statement lock: added goroutines should scale until the cores run
// out. Writes BENCH_concurrency.json for CI trend tooling.
func b12() error {
	db, err := openW(workload.Params{Departments: 20, Employees: 2000, Floors: 5, Seed: 13}, 8192)
	if err != nil {
		return err
	}
	defer db.Close()
	q := `retrieve (E.name) from E in Employees where E.dept.floor = 2`
	if _, err := db.Query(q); err != nil { // warm the pool and plan path
		return err
	}

	levels := []int{1, 4, 8}
	if *par > 0 {
		levels = []int{*par}
	}
	perG := *reps * 5 // statements per goroutine; scale with -reps
	row("goroutines", "stmts", "elapsed", "stmts/sec", "speedup")
	var base float64
	var recs []concRecord
	for _, g := range levels {
		errc := make(chan error, g)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sess := db.NewSession()
				for j := 0; j < perG; j++ {
					if _, err := sess.Query(q); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errc:
			return err
		default:
		}
		total := g * perG
		rate := float64(total) / elapsed.Seconds()
		if base == 0 {
			base = rate
		}
		speedup := rate / base
		row(g, total, elapsed.Round(time.Microsecond), fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", speedup))
		recs = append(recs, concRecord{
			Name:        fmt.Sprintf("ParallelRead%dG", g),
			Goroutines:  g,
			Gomaxprocs:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			Statements:  total,
			TotalNs:     elapsed.Nanoseconds(),
			StmtsPerSec: rate,
			Speedup:     speedup,
		})
	}
	// Writer interference: a fixed reader pool's per-statement latency
	// distribution, quiet vs with a bulk updater looping in the
	// background. Snapshot reads pin a version and execute lock-free, so
	// the writer should move the reader percentiles barely at all; a
	// statement-scoped reader lock would park every reader for a full
	// bulk-update statement and blow up the p99.
	readers := 4
	if *par > 0 {
		readers = *par
	}
	fmt.Println()
	row("bulk writer", "reads", "writer stmts", "read p50", "read p99", "reads/sec")
	for _, withWriter := range []bool{false, true} {
		rec, err := b12Interference(db, q, readers, perG, withWriter)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
		row(withWriter, rec.Statements, rec.WriterStmts,
			time.Duration(rec.ReadP50Ns).Round(time.Microsecond),
			time.Duration(rec.ReadP99Ns).Round(time.Microsecond),
			fmt.Sprintf("%.0f", rec.StmtsPerSec))
	}

	raw, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_concurrency.json", append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_concurrency.json")
	return nil
}

// b12Interference measures one cell of the writer-interference table:
// readers reader goroutines each run perG statements of q, recording
// every statement's wall time; when withWriter is set, one session
// loops a bulk salary update the whole while.
func b12Interference(db *extra.DB, q string, readers, perG int, withWriter bool) (concRecord, error) {
	stop := make(chan struct{})
	werrc := make(chan error, 1)
	writerStmts := 0
	var wwg sync.WaitGroup
	if withWriter {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			w := db.NewSession()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Exec(`replace E (salary = E.salary + 1) from E in Employees where E.dept.floor = 2`); err != nil {
					werrc <- err
					return
				}
				writerStmts++
			}
		}()
	}

	var mu sync.Mutex
	var lats []time.Duration
	errc := make(chan error, readers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			mine := make([]time.Duration, 0, perG)
			for j := 0; j < perG; j++ {
				t0 := time.Now()
				if _, err := sess.Query(q); err != nil {
					errc <- err
					return
				}
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	wwg.Wait()
	select {
	case err := <-errc:
		return concRecord{}, err
	case err := <-werrc:
		return concRecord{}, err
	default:
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	name := "ReaderLatencyQuiet"
	if withWriter {
		name = "ReaderLatencyBulkWriter"
	}
	return concRecord{
		Name:        name,
		Goroutines:  readers,
		Gomaxprocs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Statements:  len(lats),
		TotalNs:     elapsed.Nanoseconds(),
		StmtsPerSec: float64(len(lats)) / elapsed.Seconds(),
		BulkWriter:  withWriter,
		WriterStmts: writerStmts,
		ReadP50Ns:   lats[len(lats)/2].Nanoseconds(),
		ReadP99Ns:   lats[len(lats)*99/100].Nanoseconds(),
	}, nil
}

// compileRecord is one line of BENCH_compile.json: the machine-readable
// counterpart of the B13 table. CheckNs/PlanNs are the total semantic
// analysis and planning time accumulated across the measurement's
// statements — the compile-once contract is that both stay ~0 for
// repeated statements (plan cache) and prepared executions, and grow
// linearly only when every statement is textually distinct.
type compileRecord struct {
	Name    string  `json:"name"`
	NsOp    int64   `json:"ns_per_op"`
	Rows    int     `json:"rows"`
	CheckNs uint64  `json:"check_ns_total"`
	PlanNs  uint64  `json:"plan_ns_total"`
	Speedup float64 `json:"speedup_vs_interpreted,omitempty"`
}

// b13 measures the compile-once plane: (1) repeated identical retrieves
// amortize parse/check/plan to a cache hit, while textually unique
// statements pay the full front end every time; (2) a prepared
// statement pins its plan and skips even the cache probe; (3) the
// closure compiler against the interpreting walker on an
// expression-heavy filter (the compiler also folds constant
// subexpressions the walker re-evaluates per row). Writes
// BENCH_compile.json for CI trend tooling.
func b13() error {
	db, err := openW(workload.Params{Departments: 20, Employees: 5000, MaxSalary: 1000, Seed: 14}, 16384)
	if err != nil {
		return err
	}
	defer db.Close()
	row("benchmark", "median", "rows", "check total", "plan total")
	var recs []compileRecord
	rec := func(name string, d time.Duration, rows int, checkNs, planNs uint64, speedup float64) {
		row(name, d, rows, time.Duration(checkNs), time.Duration(planNs))
		recs = append(recs, compileRecord{Name: name, NsOp: d.Nanoseconds(), Rows: rows,
			CheckNs: checkNs, PlanNs: planNs, Speedup: speedup})
	}
	phases := func() (check, plan uint64) {
		s := db.MetricsSnapshot()
		return s.Histograms["phase.check"].SumNS, s.Histograms["phase.plan"].SumNS
	}

	// Repeated statement: after the warm-up miss, every run is a plan
	// cache hit — the front end contributes zero time.
	q := `retrieve (E.name) from E in Employees where E.dept.floor = 2`
	if _, err := db.Query(q); err != nil {
		return err
	}
	c0, p0 := phases()
	d, rows, err := timeQuery(db, q)
	if err != nil {
		return err
	}
	c1, p1 := phases()
	rec("RepeatCachedPlan", d, rows, c1-c0, p1-p0, 0)

	// Textually unique statements: every run misses and pays check+plan.
	var durs []time.Duration
	c0, p0 = phases()
	for i := 0; i < *reps; i++ {
		start := time.Now()
		res, err := db.Query(fmt.Sprintf(
			`retrieve (E.name) from E in Employees where E.dept.floor = 2 and E.salary < %d`, 100000+i))
		if err != nil {
			return err
		}
		durs = append(durs, time.Since(start))
		rows = len(res.Rows)
	}
	c1, p1 = phases()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	rec("UniqueColdPlan", durs[len(durs)/2], rows, c1-c0, p1-p0, 0)

	// Prepared statement: the pinned plan skips even the cache probe.
	st, err := db.Prepare(`retrieve (E.name) from E in Employees where E.dept.floor = $1`)
	if err != nil {
		return err
	}
	defer st.Close()
	if _, err := st.Exec(2); err != nil { // first execution checks and plans
		return err
	}
	durs = durs[:0]
	c0, p0 = phases()
	for i := 0; i < *reps; i++ {
		start := time.Now()
		res, err := st.Exec(2)
		if err != nil {
			return err
		}
		durs = append(durs, time.Since(start))
		rows = len(res.Rows)
	}
	c1, p1 = phases()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	rec("PreparedExec", durs[len(durs)/2], rows, c1-c0, p1-p0, 0)

	// Expression-heavy filter: closure-compiled vs interpreted walker.
	// The cross product evaluates the filter once per (E, D) pair while
	// the per-row decode work stays per extent row, so the expression
	// engine dominates the measurement (the same shape as the
	// BenchmarkExprFilter pair in bench_test.go).
	xq := `retrieve (n = count(E.name)) from E in Employees, D in Departments where
		(E.salary * D.floor + 7) % 97 + (E.salary * 3 + D.floor * 11) % 89 + (E.salary * 5 + 13) % 83
		+ (E.salary * 7 + D.floor * 17) % 79 + (E.salary * 11 + 19) % 73 + (E.salary * 13 + 23) % 71
		+ (E.salary * 17 + D.floor * 29) % 61 + (E.salary * 19 + 31) % 59 + (E.salary * 23 + 37) % 53
		+ (E.salary * 29 + D.floor * 41) % 47 + (E.salary * 31 + 43) % 43 + (E.salary * 37 + 47) % 41
		+ ((13 * 17 + 5) * 3 - 100) % 50 + (E.salary - 250) * (D.floor - 750) % 67
		+ (E.salary - 125) * (E.salary - 375) % 37 + (E.salary - 625) * (E.salary - 875) % 31 < 40`
	dc, rows, err := timeQuery(db, xq)
	if err != nil {
		return err
	}
	db.SetOptimizer(extra.OptimizerOptions{NoCompiledExprs: true})
	di, _, err := timeQuery(db, xq)
	if err != nil {
		return err
	}
	db.SetOptimizer(extra.OptimizerOptions{})
	speedup := float64(di) / float64(dc)
	rec("ExprFilterCompiled", dc, rows, 0, 0, speedup)
	rec("ExprFilterInterpreted", di, rows, 0, 0, 0)
	fmt.Printf("  compiled speedup over interpreted: %.2fx\n", speedup)

	raw, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_compile.json", append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_compile.json")
	return nil
}

// obsRecord is one line of BENCH_observability.json: median statement
// latency under one tracing configuration, with its overhead relative
// to the tracing-off baseline. This is the enforcement artifact for the
// overhead contract in DESIGN.md §9 (disabled tracing must stay within
// noise of the untraced engine).
type obsRecord struct {
	Name        string  `json:"name"`
	Every       int     `json:"sample_every"`
	NsOp        int64   `json:"ns_per_op"`
	Rows        int     `json:"rows"`
	OverheadPct float64 `json:"overhead_pct_vs_off"`
}

// b15 measures the cost of statement tracing on the Figure 5
// implicit-join workload at three sampling rates: off (every=0, the
// production default), 1-in-100 (always-affordable ops setting), and
// always-on (every=1, the debugging setting — every retrieve also pays
// the EXPLAIN ANALYZE runtime counters that feed its operator spans).
// Writes BENCH_observability.json; with -traceout, also dumps the
// always-on pass's retained traces as Chrome trace_event JSON.
func b15() error {
	db, err := openW(workload.Params{Departments: 20, Employees: 2000, Floors: 5, Seed: 15}, 8192)
	if err != nil {
		return err
	}
	defer db.Close()
	q := `retrieve (E.name) from E in Employees where E.dept.floor = 2`
	if _, err := db.Query(q); err != nil { // warm the pool and plan path
		return err
	}

	configs := []struct {
		name  string
		every int
	}{
		{"TraceOff", 0},
		{"TraceSampled100", 100},
		{"TraceAlways", 1},
	}
	row("config", "every", "median", "rows", "overhead")
	var recs []obsRecord
	var base time.Duration
	for _, c := range configs {
		db.SetTraceSampling(c.every)
		d, rows, err := timeQuery(db, q)
		if err != nil {
			return err
		}
		if base == 0 {
			base = d
		}
		overhead := (float64(d)/float64(base) - 1) * 100
		row(c.name, c.every, d, rows, fmt.Sprintf("%+.1f%%", overhead))
		recs = append(recs, obsRecord{
			Name: c.name, Every: c.every, NsOp: d.Nanoseconds(),
			Rows: rows, OverheadPct: overhead,
		})
	}
	db.SetTraceSampling(0)

	raw, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_observability.json", append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_observability.json")

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, db.Traces()...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("  wrote", *traceOut)
	}
	return nil
}

// duraRecord is one line of BENCH_durability.json: commit throughput for
// one (sync mode, sessions) cell of the group-commit matrix.
type duraRecord struct {
	Name       string  `json:"name"`
	SyncMode   string  `json:"sync_mode"`
	Sessions   int     `json:"sessions"`
	Gomaxprocs int     `json:"gomaxprocs"`
	Commits    int     `json:"commits"`
	TotalNs    int64   `json:"total_ns"`
	CommitsSec float64 `json:"commits_per_sec"`
	VsEach     float64 `json:"speedup_vs_each"`
	Fsyncs     uint64  `json:"fsyncs"`
	PerFsync   float64 `json:"commits_per_fsync"`
}

// b16 measures acknowledged-commit throughput under the three WAL sync
// modes at 1, 4 and 16 concurrent sessions, each session running
// single-row prepared appends. "each" fsyncs once per commit and is the
// classical lower bound; "group" batches every committer that arrived
// while the previous fsync was in flight into one write+fsync, so its
// advantage grows with concurrency; "none" (no wait) bounds what the
// lock path alone would allow. A no-WAL column isolates the logging
// overhead itself. Writes BENCH_durability.json for CI trend tooling.
func b16() error {
	perSession := *reps * 5
	levels := []int{1, 4, 16}
	if *par > 0 {
		levels = []int{*par}
	}
	modes := []string{"each", "group", "none", "off"}
	row("sessions", "mode", "commits", "elapsed", "commits/sec", "vs each", "batching")
	var recs []duraRecord
	for _, sessions := range levels {
		var eachRate float64
		for _, mode := range modes {
			dir, err := os.MkdirTemp("", "extra-b16-*")
			if err != nil {
				return err
			}
			opts := []extra.Option{extra.WithPoolSize(4096)}
			if mode != "off" {
				sm, err := extra.ParseWALSyncMode(mode)
				if err != nil {
					return err
				}
				opts = append(opts, extra.WithWAL(dir), extra.WithWALSync(sm))
			}
			db, err := extra.Open(opts...)
			if err != nil {
				return err
			}
			track(db)
			if _, err := db.Exec(`
				define type B16Row: ( name: varchar, v: int4 )
				create B16Rows : { own B16Row }
			`); err != nil {
				db.Close()
				return err
			}
			elapsed, err := b16Cell(db, sessions, perSession)
			fsyncs := db.WALFsyncs()
			db.Close()
			os.RemoveAll(dir)
			if err != nil {
				return err
			}
			commits := sessions * perSession
			rate := float64(commits) / elapsed.Seconds()
			if mode == "each" {
				eachRate = rate
			}
			vs := rate / eachRate
			perFsync := 0.0
			if fsyncs > 0 {
				perFsync = float64(commits) / float64(fsyncs)
			}
			row(sessions, mode, commits, elapsed.Round(time.Microsecond),
				fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", vs),
				fmt.Sprintf("%.1f c/fsync", perFsync))
			recs = append(recs, duraRecord{
				Name:       fmt.Sprintf("Commit%s%dS", strings.ToUpper(mode[:1])+mode[1:], sessions),
				SyncMode:   mode,
				Sessions:   sessions,
				Gomaxprocs: runtime.GOMAXPROCS(0),
				Commits:    commits,
				TotalNs:    elapsed.Nanoseconds(),
				CommitsSec: rate,
				VsEach:     vs,
				Fsyncs:     fsyncs,
				PerFsync:   perFsync,
			})
		}
	}
	raw, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_durability.json", append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_durability.json")
	return nil
}

// b16Cell runs one cell: sessions goroutines, each committing perSession
// acknowledged single-row appends through its own prepared statement.
func b16Cell(db *extra.DB, sessions, perSession int) (time.Duration, error) {
	errc := make(chan error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			st, err := sess.Prepare(`append to B16Rows (name = $1, v = $2)`)
			if err != nil {
				errc <- err
				return
			}
			for i := 0; i < perSession; i++ {
				if _, err := st.Exec(fmt.Sprintf("g%d-%d", g, i), i); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return elapsed, nil
}
