package extra

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/excess/ast"
	"repro/internal/excess/parse"
	"repro/internal/excess/sema"
	"repro/internal/oid"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/value"
	"repro/internal/wal"
)

// Durability. With WithWAL the engine write-ahead-logs every committed
// write statement at its Store.Commit publication point and replays the
// log on the next Open, so acknowledged commits survive a crash. The
// page file is not the recovery source — the checkpoint dump plus the
// log is: recovery loads the checkpoint (an atomic Dump carrying the
// covered LSN) and re-executes the logged statement sequence after it,
// which reproduces the store deterministically (sequential OID
// allocation, printed-statement round-trips and deterministic iteration
// are all pinned by this repo's tests and vet checks).
//
// Group commit (the default sync mode) appends under the commit lock —
// no I/O — and waits for durability only after the lock is released, so
// the fsyncs of concurrent committers coalesce into one.

// WALSyncMode re-exports the log's durability modes.
type WALSyncMode = wal.SyncMode

// Re-exported sync modes for WithWALSync.
const (
	WALSyncGroup = wal.SyncGroup // one fsync amortized over concurrent commits (default)
	WALSyncEach  = wal.SyncEach  // fsync inline per commit (the baseline B16 compares against)
	WALSyncNone  = wal.SyncNone  // no fsync; durable against process crash only
)

// ParseWALSyncMode parses "group", "each" or "none" (the -walsync flag).
func ParseWALSyncMode(s string) (WALSyncMode, error) { return wal.ParseSyncMode(s) }

// WithWAL enables write-ahead logging in dir: every committed write is
// logged before it is acknowledged, and Open replays the log (from the
// latest checkpoint, if any) before returning.
func WithWAL(dir string) Option {
	return func(c *config) { c.walDir = dir }
}

// WithWALSync selects the WAL durability mode (default WALSyncGroup).
func WithWALSync(m WALSyncMode) Option {
	return func(c *config) { c.walSync = m }
}

// checkpointFile is the checkpoint dump inside the WAL directory: a
// regular Dump stream whose first line is "#wal-lsn N" (a comment to
// Load), written atomically so the dump and the LSN it covers can never
// disagree.
const checkpointFile = "checkpoint.xd"

// openWAL restores the checkpoint (if any), replays the log and leaves
// db.wal ready for appends. Runs inside Open, before the DB is shared:
// no locks are needed around the field writes, and db.wal is still nil
// during replay, which is exactly what suppresses re-logging the
// replayed statements.
func (db *DB) openWAL(dir string, mode WALSyncMode) error {
	ckptLSN, err := db.restoreCheckpoint(filepath.Join(dir, checkpointFile))
	if err != nil {
		return err
	}
	sessions := map[int64]*Session{}
	l, _, err := wal.Open(dir, wal.Options{
		Sync:          mode,
		CheckpointLSN: ckptLSN,
		Replay: func(r *wal.Record) error {
			if r.LSN <= ckptLSN {
				return nil // already inside the checkpoint dump
			}
			return db.replayRecord(r, sessions)
		},
	})
	if err != nil {
		return err
	}
	db.wal = l
	db.walDir = dir
	return nil
}

// restoreCheckpoint loads the checkpoint dump and returns the LSN it
// covers (0 when no checkpoint exists).
func (db *DB) restoreCheckpoint(path string) (uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("wal: checkpoint %s: %w", path, err)
	}
	lsnStr, ok := strings.CutPrefix(strings.TrimSpace(line), "#wal-lsn ")
	if !ok {
		return 0, fmt.Errorf("wal: checkpoint %s: missing #wal-lsn header", path)
	}
	lsn, err := strconv.ParseUint(lsnStr, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: checkpoint %s: bad #wal-lsn: %w", path, err)
	}
	// The header line is consumed; the rest of the stream is a plain
	// dump. The checkpoint was written atomically by Checkpoint, so it is
	// trusted and loaded directly, without Load's staging pass.
	if err := db.loadStream(br); err != nil {
		return 0, fmt.Errorf("wal: checkpoint restore: %w", err)
	}
	return lsn, nil
}

// replayRecord re-executes one logged mutation during recovery. Records
// carry their originating session id so per-session state (range
// declarations) accumulates exactly as it did originally, and the user
// the statement committed under so procedure definitions keep their
// definer. Authorization state is not durable (grants are session
// configuration, same as Dump), so nothing is access-checked during
// replay: the authorizer is still in its pass-everything initial state.
func (db *DB) replayRecord(r *wal.Record, sessions map[int64]*Session) error {
	s := sessions[r.Session]
	if s == nil {
		s = &Session{db: db, id: r.Session, user: "dba", sem: sema.NewSession()}
		sessions[r.Session] = s
	}
	s.user = r.User
	var err error
	switch r.Kind {
	case wal.RecordStmt:
		err = s.replayStmt(r)
	case wal.RecordLoad:
		err = db.replayLoad(r)
	case wal.RecordInsert:
		err = db.replayInsert(r)
	case wal.RecordSetRef:
		err = db.replaySetRef(r)
	default:
		return fmt.Errorf("unknown record kind %d", r.Kind)
	}
	if err != nil && !r.Erred {
		return err
	}
	// The engine has no rollback: a statement that erred after mutating
	// still published its partial effects, and the log says so (Erred).
	// Deterministic re-execution fails the same way at the same point —
	// the partial effects are the durable state, the error is expected.
	return nil
}

// replayStmt re-executes one logged EXCESS statement under the commit
// lock, decoding prepared-statement arguments back into a parameter
// frame when the record carries them.
//
// extra:acquires db.wmu.W
func (s *Session) replayStmt(r *wal.Record) error {
	db := s.db
	st, err := parse.One(r.Src, db.reg)
	if err != nil {
		return fmt.Errorf("reparse %q: %w", r.Src, err)
	}
	var params *paramScope
	if len(r.Data) > 0 {
		if params, err = decodeParams(db, s, st, r.Data); err != nil {
			return err
		}
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	es := db.exec.NewState()
	defer es.Release()
	es.BindLive()
	var tr trace.StmtTrace
	tr.Begin(db.tracer, time.Now())
	_, _, err = s.runWriteStmt(es, st, params, &tr)
	return err
}

// replayLoad re-applies one Load data section; restoreData stops at the
// first bad line exactly like the original run did.
func (db *DB) replayLoad(r *wal.Record) error {
	var lines []dataLine
	for i, text := range strings.Split(r.Src, "\n") {
		lines = append(lines, dataLine{no: i + 1, text: text})
	}
	_, err := db.restoreData(lines)
	return err
}

// replayInsert re-runs one DB.Insert: the tuple bytes decode back to
// the pre-insert value and insertion re-allocates the same OID the
// sequential generator handed out originally.
func (db *DB) replayInsert(r *wal.Record) error {
	if len(r.Data) != 1 {
		return fmt.Errorf("insert record wants 1 data field, has %d", len(r.Data))
	}
	v, err := codec.DecodeOne(r.Data[0], db.cat)
	if err != nil {
		return err
	}
	tv, ok := v.(*value.Tuple)
	if !ok {
		return fmt.Errorf("insert record holds %T, want tuple", v)
	}
	_, _, err = db.insertTuple(r.Src, tv)
	return err
}

// replaySetRef re-runs one DB.SetRef from its logged operands.
func (db *DB) replaySetRef(r *wal.Record) error {
	if len(r.Data) != 4 {
		return fmt.Errorf("setref record wants 4 data fields, has %d", len(r.Data))
	}
	obj := Obj{id: oidFromBytes(r.Data[0]), typ: string(r.Data[1])}
	var target Obj
	if len(r.Data[2]) > 0 {
		target = Obj{id: oidFromBytes(r.Data[2]), typ: string(r.Data[3])}
	}
	return db.SetRef(obj, r.Src, target)
}

func oidBytes(id oid.OID) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(id) >> (56 - 8*i))
	}
	return b[:]
}

func oidFromBytes(b []byte) oid.OID {
	var n uint64
	for _, c := range b {
		n = n<<8 | uint64(c)
	}
	return oid.OID(n)
}

// stmtRecord builds the WAL record a write statement will be logged
// as, or nil for statement classes that are never logged. It runs
// BEFORE the statement executes: the engine has no rollback, so a
// record the log cannot hold (wal.ErrTooLarge) must refuse the
// statement while nothing has mutated — logging failures discovered
// after publication would leave live state the log does not reproduce,
// and every later record would replay against the wrong state.
//
// Policy: read-only statements in a mixed batch touch nothing and are
// skipped; grant/revoke mutate only the in-memory authorizer, which is
// session configuration and not durable (consistent with Dump);
// everything else is logged — including statements that err after
// partial effects (Erred), and statements whose effects live outside
// the store (range declarations shape later statements' meaning, so
// replay needs them).
//
// extra:logs
func (db *DB) stmtRecord(s *Session, st ast.Statement, params *paramScope) (*wal.Record, error) {
	if db.wal == nil || sema.ReadOnly(st) {
		return nil, nil
	}
	switch st.(type) {
	case *ast.Grant, *ast.Revoke:
		return nil, nil
	}
	rec := &wal.Record{
		Kind:    wal.RecordStmt,
		Session: s.id,
		User:    s.user,
		Src:     ast.Print(st),
	}
	if params != nil {
		data, err := encodeParams(params)
		if err != nil {
			return nil, err
		}
		rec.Data = data
	}
	if sz := rec.PayloadSize(); sz > wal.MaxRecord {
		return nil, fmt.Errorf("statement refused: %w (payload %d bytes, limit %d)", wal.ErrTooLarge, sz, wal.MaxRecord)
	}
	return rec, nil
}

// logStmt appends a statement record built by stmtRecord, now that the
// statement has run. Returns the assigned LSN (0 when nothing was
// logged); the caller must await durability with waitDurable after
// releasing the commit lock. A statement that failed without
// publishing a snapshot or moving the catalog left no durable trace
// and is skipped.
//
// extra:requires db.wmu.W
// extra:logs
func (db *DB) logStmt(rec *wal.Record, runErr error, effects bool) (uint64, error) {
	if rec == nil {
		return 0, nil
	}
	if runErr != nil && !effects {
		return 0, nil
	}
	rec.Erred = runErr != nil
	return db.wal.Append(rec)
}

// waitDurable blocks until the record at lsn is fsynced (a no-op
// without a WAL or when nothing was logged). Call with no engine lock
// held: that is what lets concurrent commits share one fsync.
func (db *DB) waitDurable(lsn uint64) error {
	if db.wal == nil || lsn == 0 {
		return nil
	}
	return db.wal.WaitDurable(lsn)
}

// encodeParams serializes a prepared statement's $1..$n arguments.
func encodeParams(p *paramScope) ([][]byte, error) {
	out := make([][]byte, len(p.values))
	for i := range out {
		v, ok := p.values["$"+strconv.Itoa(i+1)]
		if !ok {
			return nil, fmt.Errorf("wal: parameter $%d missing from frame", i+1)
		}
		enc, err := codec.Encode(nil, v)
		if err != nil {
			return nil, fmt.Errorf("wal: encode parameter $%d: %w", i+1, err)
		}
		out[i] = enc
	}
	return out, nil
}

// decodeParams rebuilds the parameter frame for a logged prepared
// statement: values decode from their codec bytes, slot types come from
// re-probing the statement the same way Prepare did.
func decodeParams(db *DB, s *Session, st ast.Statement, data [][]byte) (*paramScope, error) {
	ck := sema.NewChecker(db.cat, s.sem, nil)
	if err := probeCheck(ck, st); err != nil {
		return nil, err
	}
	ptypes := ck.Placeholders()
	tmap := make(map[string]types.Type, len(data))
	vmap := make(map[string]value.Value, len(data))
	for i, enc := range data {
		name := "$" + strconv.Itoa(i+1)
		v, err := codec.DecodeOne(enc, db.cat)
		if err != nil {
			return nil, fmt.Errorf("wal: decode parameter %s: %w", name, err)
		}
		t := types.Type(types.Varchar)
		if i < len(ptypes) && ptypes[i] != nil {
			t = ptypes[i]
		}
		tmap[name] = t
		vmap[name] = v
	}
	return &paramScope{types: tmap, values: vmap}, nil
}

// Checkpoint makes the WAL short: it forces the log durable, writes an
// atomic dump annotated with the covered LSN, fsyncs the page store,
// and garbage-collects the log segments the dump now covers. The commit
// lock is held across flush + dump so no commit can slip between the
// pinned LSN and the pinned snapshot; writers stall for the duration.
// Crash-safe at every point: until the dump's rename lands, recovery
// uses the previous checkpoint and the unremoved log.
//
// extra:acquires db.wmu.W
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("checkpoint: database has no WAL (open with WithWAL)")
	}
	db.wmu.Lock()
	if db.closed {
		db.wmu.Unlock()
		return errDBClosed
	}
	lsn, err := db.wal.Flush()
	if err == nil {
		path := filepath.Join(db.walDir, checkpointFile)
		err = writeFileAtomic(path, func(f *os.File) error {
			if _, werr := fmt.Fprintf(f, "#wal-lsn %d\n", lsn); werr != nil {
				return werr
			}
			return db.Dump(f)
		})
	}
	if err == nil {
		err = db.pool.Store().Sync()
	}
	db.wmu.Unlock()
	if err != nil {
		return err
	}
	return db.wal.TruncateThrough(lsn)
}

// WALFsyncs returns how many fsyncs the log has issued (0 without a
// WAL); acknowledged commits divided by fsyncs is the group-commit
// amortization factor.
func (db *DB) WALFsyncs() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.Syncs()
}

// WALStats reports the log position: the last assigned and last durable
// LSNs (both 0 without a WAL).
func (db *DB) WALStats() (next, durable uint64) {
	if db.wal == nil {
		return 0, 0
	}
	return db.wal.NextLSN(), db.wal.Durable()
}
