package extra

import (
	"strings"
	"testing"
)

// TestInsertConversions covers the Go-native → EXTRA value conversions of
// the bulk-load API: numbers shaped to declared widths, strings, bools,
// refs, nested tuples, sets and fixed arrays.
func TestInsertConversions(t *testing.T) {
	db := mustOpen(t)
	db.MustExec(`
		define enum Level : ( lo, hi )
		define type Sub: ( sname: varchar )
		define type Rec:
		  ( i1: int1, i2: int2, i4: int4,
		    f4: float4, f8: float8,
		    s: varchar, c: char[4], b: bool,
		    part: own Sub,
		    bits: { int4 },
		    grid: [2] float8,
		    peer: ref Rec,
		    subs: { own ref Sub } )
		create Recs : { own Rec }
	`)
	first, err := db.Insert("Recs", Attrs{"s": "first"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Insert("Recs", Attrs{
		"i1":   int64(7),
		"i2":   1000,
		"i4":   123456,
		"f4":   1.5,
		"f8":   2, // Go int into a float slot
		"s":    "str",
		"c":    "ab", // padded to char[4]
		"b":    true,
		"part": Attrs{"sname": "embedded"},
		"bits": []any{1, 2, 3},
		"grid": []any{0.5, 1.5},
		"peer": first,
		"subs": []any{Attrs{"sname": "owned"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := db.MustQuery(`
		retrieve (R.i1, R.i2, R.f8, R.c, R.part.sname, R.grid[2], R.peer.s, n = count(R.subs))
		from R in Recs where R.s = "str"`)
	row := res.Rows[0]
	want := []string{"7", "1000", "2", `"ab  "`, `"embedded"`, "1.5", `"first"`, "1"}
	for i, w := range want {
		if row[i].String() != w {
			t.Errorf("col %d = %s, want %s", i, row[i], w)
		}
	}
	// Range violations surface from internalization.
	if _, err := db.Insert("Recs", Attrs{"i1": 300}); err == nil ||
		!strings.Contains(err.Error(), "range") {
		t.Fatalf("int1 overflow accepted: %v", err)
	}
	// Nested Attrs on a non-tuple slot is rejected.
	if _, err := db.Insert("Recs", Attrs{"i4": Attrs{"x": 1}}); err == nil {
		t.Fatal("attrs into scalar slot accepted")
	}
	// Slice into a non-collection slot is rejected.
	if _, err := db.Insert("Recs", Attrs{"i4": []any{1}}); err == nil {
		t.Fatal("slice into scalar slot accepted")
	}
	// Obj handles render and validate.
	if !first.Valid() || first.String() == "" {
		t.Error("Obj accessors")
	}
	if (Obj{}).Valid() {
		t.Error("zero Obj valid")
	}
	// The consistency checker agrees with all of this.
	if bad := db.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("fsck: %v", bad)
	}
}

// TestDumpLoadWithADTs: ADT-valued attributes (Date, Complex) survive the
// snapshot round trip byte-exactly.
func TestDumpLoadWithADTs(t *testing.T) {
	db := mustOpen(t)
	db.MustExec(`
		define type Meas: ( when: Date, z: Complex )
		create Meass : { own Meas }
		append to Meass (when = date("12/07/1987"), z = complex(1.5, -2.0))
	`)
	var buf strings.Builder
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t)
	if err := db2.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	res := db2.MustQuery(`retrieve (M.when, y = year(M.when), M.z) from M in Meass`)
	row := res.Rows[0]
	if row[0].String() != "12/07/1987" || row[1].String() != "1987" || row[2].String() != "1.5-2i" {
		t.Fatalf("ADT round trip: %v", row)
	}
}
