package extra_test

import (
	"fmt"

	extra "repro"
)

// The godoc examples double as executable documentation: each runs under
// go test and its output is verified.

func ExampleOpen() {
	db, err := extra.Open()
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.MustExec(`
		define type Person: ( name: varchar, age: int4 )
		create People : { own Person }
		append to People (name = "Alice", age = 41)
		append to People (name = "Bob", age = 33)
	`)
	res := db.MustQuery(`retrieve (P.name) from P in People where P.age > 40`)
	fmt.Print(res)
	// Output:
	// name
	// -------
	// "Alice"
}

func ExampleDB_Exec_implicitJoin() {
	db, _ := extra.Open()
	defer db.Close()
	db.MustExec(`
		define type Dept: ( dname: varchar, floor: int4 )
		define type Emp: ( name: varchar, dept: ref Dept )
		create Depts : { own Dept }
		create Emps : { own Emp }
		append to Depts (dname = "Toys", floor = 2)
		append to Emps (name = "Ann")
		replace E (dept = D) from E in Emps, D in Depts
	`)
	res := db.MustQuery(`retrieve (E.name) from E in Emps where E.dept.floor = 2`)
	fmt.Println(len(res.Rows), "row(s)")
	// Output:
	// 1 row(s)
}

func ExampleDB_Insert() {
	db, _ := extra.Open()
	defer db.Close()
	db.MustExec(`
		define type Person: ( name: varchar, kids: { own ref Person } )
		create People : { own Person }
	`)
	// Bulk loading without the parser; nested attrs become owned
	// component objects.
	_, err := db.Insert("People", extra.Attrs{
		"name": "Ann",
		"kids": []any{extra.Attrs{"name": "Amy"}},
	})
	if err != nil {
		panic(err)
	}
	res := db.MustQuery(`retrieve (n = count(People.kids))`)
	fmt.Print(res)
	// Output:
	// n
	// -
	// 1
}

func ExampleDB_Explain() {
	db, _ := extra.Open()
	defer db.Close()
	db.MustExec(`
		define type Emp: ( name: varchar, salary: int4 )
		create Emps : { own Emp }
		define index emp_sal on Emps (salary)
	`)
	out, _ := db.Explain(`retrieve (E.name) from E in Emps where E.salary > 100`)
	fmt.Print(out)
	// Output:
	// -> index probe emp_sal on Emps [>] binding E
	//    filter: (E.salary > 100)
}

func ExampleDB_Query_aggregates() {
	db, _ := extra.Open()
	defer db.Close()
	db.MustExec(`
		define type M: ( grp: varchar, v: int4 )
		create Ms : { own M }
		append to Ms (grp = "a", v = 1)
		append to Ms (grp = "a", v = 3)
		append to Ms (grp = "b", v = 10)
	`)
	res := db.MustQuery(`retrieve (g = X.grp, s = sum(X.v by X.grp)) from X in Ms`)
	fmt.Print(res)
	// Output:
	// g    s
	// ---  --
	// "a"  4
	// "b"  10
}
