// Package extra is a Go implementation of EXTRA and EXCESS — the data
// model and query language designed for the EXODUS extensible database
// system (Carey, DeWitt and Vandenberg, SIGMOD 1988).
//
// EXTRA provides tuple, set, fixed- and variable-length array and
// reference type constructors, three attribute-value semantics (own, ref
// and own ref), multiple inheritance over schema types, and an abstract
// data type facility. EXCESS is the QUEL-derived query language over
// it: range variables, implicit joins through reference paths, nested
// set queries, aggregates with by/over partitioning, universal
// quantification, updates, functions (derived data) and procedures
// (stored commands).
//
// Quick start:
//
//	db, _ := extra.Open()
//	defer db.Close()
//	db.MustExec(`
//	    define type Person: ( name: char[20], age: int4 )
//	    create People : { own Person }
//	    append to People (name = "Alice", age = 41)
//	`)
//	res, _ := db.Query(`retrieve (P.name) from P in People where P.age > 40`)
//	fmt.Print(res)
package extra

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/algebra"
	"repro/internal/authz"
	"repro/internal/catalog"
	"repro/internal/excess/ast"
	"repro/internal/excess/parse"
	"repro/internal/excess/sema"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/value"
)

// errDBClosed reports use of a closed database.
var errDBClosed = errors.New("database is closed")

// Result re-exports the executor's result set.
type Result = exec.Result

// Row re-exports the executor's result row.
type Row = exec.Row

// OptimizerOptions re-exports the optimizer switches (zero value: all
// optimizations on).
type OptimizerOptions = algebra.Options

// PoolStats re-exports buffer pool counters.
type PoolStats = storage.PoolStats

// Metrics re-exports the engine metrics registry (counters, gauges,
// latency histograms). See DB.Metrics.
type Metrics = metrics.Registry

// MetricsSnapshot re-exports a point-in-time copy of the registry.
type MetricsSnapshot = metrics.Snapshot

// DB is an EXTRA/EXCESS database: catalog, object store, buffer pool,
// session state and executor. Statements are serialized by an internal
// mutex; a DB is safe for concurrent use by multiple goroutines.
type DB struct {
	mu      sync.Mutex
	reg     *adt.Registry
	cat     *catalog.Catalog
	pool    *storage.BufferPool
	store   *object.Store
	session *sema.Session
	exec    *exec.Executor
	auth    *authz.Authorizer
	user    string
	closed  bool

	metrics *metrics.Registry
	// Pre-resolved hot-path metric handles (one atomic add each, no
	// registry lookup on the statement path).
	hParse, hCheck, hPlan, hExecute, hStmt *metrics.Histogram
	cRows, cErrors                         *metrics.Counter

	// Slow-query log: a ring buffer of the last slowCap statements that
	// exceeded slowThreshold. Guarded by mu.
	slowThreshold time.Duration
	slowCap       int
	slow          []SlowQuery
	slowNext      int
}

// Option configures Open.
type Option func(*config)

type config struct {
	poolPages     int
	filePath      string
	slowThreshold time.Duration
	slowCap       int
}

// WithPoolSize sets the buffer pool capacity in pages (default 256).
func WithPoolSize(pages int) Option {
	return func(c *config) { c.poolPages = pages }
}

// WithFileStore backs pages with the given file instead of memory.
func WithFileStore(path string) Option {
	return func(c *config) { c.filePath = path }
}

// WithSlowQueryLog configures the slow-query log: statements slower
// than threshold are kept in a ring buffer of the last capacity
// entries, retrievable via SlowQueries. A threshold of 0 disables
// logging. The default is 100ms with capacity 32.
func WithSlowQueryLog(threshold time.Duration, capacity int) Option {
	return func(c *config) {
		c.slowThreshold = threshold
		c.slowCap = capacity
	}
}

// Open creates a database. The ADT registry comes preloaded with the
// built-in Date and Complex types of the paper's figures.
func Open(opts ...Option) (*DB, error) {
	cfg := config{poolPages: 256, slowThreshold: 100 * time.Millisecond, slowCap: 32}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.slowCap < 1 {
		cfg.slowCap = 1
	}
	var ps storage.PageStore
	if cfg.filePath != "" {
		fs, err := storage.OpenFileStore(cfg.filePath)
		if err != nil {
			return nil, err
		}
		ps = fs
	} else {
		ps = storage.NewMemStore()
	}
	reg := adt.NewRegistry()
	cat := catalog.New(reg)
	pool := storage.NewBufferPool(ps, cfg.poolPages)
	store := object.New(pool, cat)
	session := sema.NewSession()
	mreg := metrics.NewRegistry()
	db := &DB{
		reg:     reg,
		cat:     cat,
		pool:    pool,
		store:   store,
		session: session,
		exec:    exec.New(store, cat, session),
		auth:    authz.New(),
		user:    "dba",

		metrics:  mreg,
		hParse:   mreg.Histogram("phase.parse"),
		hCheck:   mreg.Histogram("phase.check"),
		hPlan:    mreg.Histogram("phase.plan"),
		hExecute: mreg.Histogram("phase.execute"),
		hStmt:    mreg.Histogram("stmt.latency"),
		cRows:    mreg.Counter("rows.returned"),
		cErrors:  mreg.Counter("stmt.errors"),

		slowThreshold: cfg.slowThreshold,
		slowCap:       cfg.slowCap,
	}
	db.exec.SetMetrics(mreg)
	return db, nil
}

// Close flushes dirty pages and releases the page store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.pool.Store().Close()
}

// Registry exposes the ADT registry for registering new abstract data
// types, operators and generic set functions from Go — the E-language
// extension path of the paper.
func (db *DB) Registry() *adt.Registry { return db.reg }

// Catalog exposes the schema catalog (read-mostly introspection).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// SetOptimizer configures query optimization (benchmarks use this to
// compare optimized and naive plans).
func (db *DB) SetOptimizer(o OptimizerOptions) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.exec.SetOptions(o)
}

// PoolStats returns buffer pool counters.
func (db *DB) PoolStats() PoolStats { return db.pool.Stats() }

// ResetPoolStats zeroes buffer pool counters.
func (db *DB) ResetPoolStats() { db.pool.ResetStats() }

// Metrics exposes the engine metrics registry: statement counters by
// kind, parse/check/plan/execute phase latency histograms, rows
// returned and error counts. The registry is safe for concurrent
// reads while statements execute.
func (db *DB) Metrics() *Metrics { return db.metrics }

// MetricsSnapshot copies the registry and merges in the buffer pool
// counters (pool.hits, pool.misses, pool.evictions, pool.flushes,
// pool.writebacks), giving one coherent observability document.
func (db *DB) MetricsSnapshot() MetricsSnapshot {
	s := db.metrics.Snapshot()
	ps := db.pool.Stats()
	s.Counters["pool.hits"] = ps.Hits
	s.Counters["pool.misses"] = ps.Misses
	s.Counters["pool.evictions"] = ps.Evictions
	s.Counters["pool.flushes"] = ps.Flushes
	s.Counters["pool.writebacks"] = ps.WriteBacks
	return s
}

// SlowQuery is one slow-query log entry: the statement source with its
// phase breakdown and result size.
type SlowQuery struct {
	Src     string        `json:"src"`
	When    time.Time     `json:"when"`
	Total   time.Duration `json:"total_ns"`
	Parse   time.Duration `json:"parse_ns"`
	Check   time.Duration `json:"check_ns"`
	Plan    time.Duration `json:"plan_ns"`
	Execute time.Duration `json:"execute_ns"`
	Rows    int           `json:"rows"`
}

// SlowQueries returns the retained slow statements, oldest first.
func (db *DB) SlowQueries() []SlowQuery {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]SlowQuery, 0, len(db.slow))
	if len(db.slow) == db.slowCap {
		out = append(out, db.slow[db.slowNext:]...)
		out = append(out, db.slow[:db.slowNext]...)
		return out
	}
	return append(out, db.slow...)
}

// SetSlowQueryThreshold adjusts the slow-query threshold at run time;
// 0 disables logging.
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.slowThreshold = d
}

// stmtTrace accumulates phase durations and result size across the
// statements of one Exec/Query call.
type stmtTrace struct {
	check, plan, execute time.Duration
	rows                 int
}

// finishTrace records one finished Exec/Query call into the registry
// and, when over threshold, the slow-query log. Caller holds db.mu.
func (db *DB) finishTrace(src string, parse time.Duration, tr *stmtTrace, start time.Time) {
	total := time.Since(start)
	db.hParse.Observe(parse)
	db.hCheck.Observe(tr.check)
	db.hPlan.Observe(tr.plan)
	db.hExecute.Observe(tr.execute)
	db.hStmt.Observe(total)
	db.cRows.Add(uint64(tr.rows))
	if db.slowThreshold > 0 && total >= db.slowThreshold {
		entry := SlowQuery{
			Src: src, When: time.Now(), Total: total,
			Parse: parse, Check: tr.check, Plan: tr.plan, Execute: tr.execute,
			Rows: tr.rows,
		}
		if len(db.slow) < db.slowCap {
			db.slow = append(db.slow, entry)
			db.slowNext = len(db.slow) % db.slowCap
		} else {
			db.slow[db.slowNext] = entry
			db.slowNext = (db.slowNext + 1) % db.slowCap
		}
	}
}

// Exec parses and runs one or more EXCESS statements, returning the
// result of the last retrieve (nil if none).
func (db *DB) Exec(src string) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, errDBClosed
	}
	start := time.Now()
	stmts, err := parse.Statements(src, db.reg)
	parseDur := time.Since(start)
	if err != nil {
		db.cErrors.Inc()
		return nil, err
	}
	var tr stmtTrace
	var last *Result
	for _, st := range stmts {
		r, err := db.runStmt(st, nil, &tr)
		if err != nil {
			db.cErrors.Inc()
			return nil, err
		}
		if r != nil {
			last = r
		}
	}
	if last != nil {
		tr.rows = len(last.Rows)
	}
	db.finishTrace(src, parseDur, &tr, start)
	return last, nil
}

// Query is Exec for a single retrieve; it errors when the source is not
// exactly one retrieve statement.
func (db *DB) Query(src string) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, errDBClosed
	}
	start := time.Now()
	st, err := parse.One(src, db.reg)
	parseDur := time.Since(start)
	if err != nil {
		db.cErrors.Inc()
		return nil, err
	}
	r, ok := st.(*ast.Retrieve)
	if !ok {
		db.cErrors.Inc()
		return nil, fmt.Errorf("query: %w (use Exec for updates and DDL)", ErrNotRetrieve)
	}
	var tr stmtTrace
	res, err := db.runStmt(r, nil, &tr)
	if err != nil {
		db.cErrors.Inc()
		return nil, err
	}
	if res != nil {
		tr.rows = len(res.Rows)
	}
	db.finishTrace(src, parseDur, &tr, start)
	return res, nil
}

// MustExec runs statements and panics on error; for examples and tests.
func (db *DB) MustExec(src string) *Result {
	r, err := db.Exec(src)
	if err != nil {
		panic(err)
	}
	return r
}

// MustQuery runs a retrieve and panics on error.
func (db *DB) MustQuery(src string) *Result {
	r, err := db.Query(src)
	if err != nil {
		panic(err)
	}
	return r
}

// runStmt dispatches one statement. params provides the parameter scope
// when executing procedure bodies; tr (optional) accumulates phase
// durations for the statement-level trace. Callers hold db.mu.
func (db *DB) runStmt(st ast.Statement, params *paramScope, tr *stmtTrace) (*Result, error) {
	db.metrics.Counter("stmt." + stmtKind(st)).Inc()
	if tr != nil {
		// Non-retrieve statements do not split phases; their whole cost
		// lands in the execute phase. Retrieves are timed per phase in
		// their case below.
		if _, isRet := st.(*ast.Retrieve); !isRet {
			t0 := time.Now()
			defer func() { tr.execute += time.Since(t0) }()
		}
	}
	switch s := st.(type) {
	case *ast.DefineType:
		_, err := db.cat.DefineTupleFromAST(s)
		if err == nil {
			db.auth.SetOwner(s.Name, db.user)
		}
		return nil, err
	case *ast.DefineEnum:
		return nil, db.cat.DefineEnum(&types.Enum{Name: s.Name, Labels: s.Labels})
	case *ast.Create:
		comp, err := db.cat.ResolveComponent(s.Comp)
		if err != nil {
			return nil, err
		}
		v, err := db.cat.CreateVar(s.Name, comp)
		if err != nil {
			return nil, err
		}
		if err := db.store.InitVar(v); err != nil {
			return nil, err
		}
		for i, key := range s.Keys {
			if _, err := db.store.BuildKey(s.Name, key, i); err != nil {
				return nil, err
			}
		}
		db.auth.SetOwner(s.Name, db.user)
		return nil, nil
	case *ast.Drop:
		if err := db.auth.Check(db.user, s.Name, authz.Update); err != nil {
			return nil, err
		}
		v, ok := db.cat.Var(s.Name)
		if !ok {
			return nil, fmt.Errorf("no database variable %s", s.Name)
		}
		if err := db.store.DropVar(v); err != nil {
			return nil, err
		}
		return nil, db.cat.DropVar(s.Name)
	case *ast.DefineFunction:
		_, err := sema.BuildFunction(db.cat, db.session, s)
		return nil, err
	case *ast.DefineProcedure:
		p, err := sema.BuildProcedure(db.cat, s)
		if err != nil {
			return nil, err
		}
		p.Owner = db.user
		return nil, db.cat.DefineProcedure(p)
	case *ast.DefineIndex:
		_, err := db.store.BuildIndex(s.Name, s.Extent, s.Path, s.Unique)
		return nil, err
	case *ast.RangeDecl:
		// Validate eagerly so "range of E is Nonexistent" fails here.
		probe := sema.NewChecker(db.cat, sema.NewSession(), params.typesOrNil())
		if _, err := probe.ProbeRange(s); err != nil {
			return nil, err
		}
		db.session.Declare(s)
		return nil, nil
	case *ast.Grant:
		return nil, db.auth.Grant(db.user, s.Priv, s.On, s.To)
	case *ast.Revoke:
		return nil, db.auth.Revoke(db.user, s.Priv, s.On, s.From)
	case *ast.Retrieve:
		ck := db.checker(params)
		t0 := time.Now()
		cq, err := ck.CheckRetrieve(s)
		if tr != nil {
			tr.check += time.Since(t0)
		}
		if err != nil {
			return nil, err
		}
		if err := db.authQuery(cq.Query, nil, targetExprs(cq)...); err != nil {
			return nil, err
		}
		t0 = time.Now()
		plan := db.exec.Plan(cq.Query)
		if tr != nil {
			tr.plan += time.Since(t0)
		}
		t0 = time.Now()
		res, err := db.withParams(params, func() (*Result, error) {
			return db.exec.RetrievePlan(cq, plan)
		})
		if tr != nil {
			tr.execute += time.Since(t0)
		}
		if err != nil {
			return nil, err
		}
		if cq.Into != "" {
			db.auth.SetOwner(cq.Into, db.user)
		}
		return res, nil
	case *ast.Append:
		ck := db.checker(params)
		ca, err := ck.CheckAppend(s)
		if err != nil {
			return nil, err
		}
		wr := ca.Extent
		if wr == "" {
			wr = ca.OwnerVar
		}
		if err := db.authQuery(ca.Query, []string{wr}); err != nil {
			return nil, err
		}
		_, err = db.withParamsN(params, func() (int, error) { return db.exec.Append(ca) })
		return nil, err
	case *ast.Delete:
		ck := db.checker(params)
		cd, err := ck.CheckDelete(s)
		if err != nil {
			return nil, err
		}
		if err := db.authQuery(cd.Query, []string{cd.Var.Extent}); err != nil {
			return nil, err
		}
		_, err = db.withParamsN(params, func() (int, error) { return db.exec.Delete(cd) })
		return nil, err
	case *ast.Replace:
		ck := db.checker(params)
		cr, err := ck.CheckReplace(s)
		if err != nil {
			return nil, err
		}
		if err := db.authQuery(cr.Query, []string{cr.Var.Extent}); err != nil {
			return nil, err
		}
		_, err = db.withParamsN(params, func() (int, error) { return db.exec.Replace(cr) })
		return nil, err
	case *ast.SetStmt:
		ck := db.checker(params)
		cs, err := ck.CheckSet(s)
		if err != nil {
			return nil, err
		}
		if err := db.authQuery(cs.Query, []string{cs.VarName}); err != nil {
			return nil, err
		}
		_, err = db.withParams(params, func() (*Result, error) { return nil, db.exec.Set(cs) })
		return nil, err
	case *ast.Execute:
		return nil, db.runExecute(s, params)
	}
	return nil, fmt.Errorf("unhandled statement %T", st)
}

// stmtKind names a statement for the per-kind metric counters
// (stmt.retrieve, stmt.append, ...).
func stmtKind(st ast.Statement) string {
	switch st.(type) {
	case *ast.Retrieve:
		return "retrieve"
	case *ast.Append:
		return "append"
	case *ast.Delete:
		return "delete"
	case *ast.Replace:
		return "replace"
	case *ast.SetStmt:
		return "set"
	case *ast.Execute:
		return "execute"
	case *ast.DefineType, *ast.DefineEnum, *ast.DefineFunction,
		*ast.DefineProcedure, *ast.DefineIndex:
		return "define"
	case *ast.Create:
		return "create"
	case *ast.Drop:
		return "drop"
	case *ast.RangeDecl:
		return "range"
	case *ast.Grant, *ast.Revoke:
		return "grant"
	}
	return "other"
}

// targetExprs collects the bound target expressions of a retrieve (for
// authorization walks).
func targetExprs(cq *sema.CheckedRetrieve) []sema.Expr {
	texprs := make([]sema.Expr, len(cq.Targets))
	for i, tc := range cq.Targets {
		texprs[i] = tc.Expr
	}
	return texprs
}

// paramScope carries the parameter names/types/values of an executing
// procedure body.
type paramScope struct {
	types  map[string]types.Type
	values map[string]value.Value
}

func (p *paramScope) typesOrNil() map[string]types.Type {
	if p == nil {
		return nil
	}
	return p.types
}

func (db *DB) checker(params *paramScope) *sema.Checker {
	return sema.NewChecker(db.cat, db.session, params.typesOrNil())
}

// withParams runs fn with the procedure parameter frame installed.
func (db *DB) withParams(params *paramScope, fn func() (*Result, error)) (*Result, error) {
	if params != nil {
		db.exec.PushParams(params.values)
		defer db.exec.PopParams()
	}
	return fn()
}

func (db *DB) withParamsN(params *paramScope, fn func() (int, error)) (int, error) {
	if params != nil {
		db.exec.PushParams(params.values)
		defer db.exec.PopParams()
	}
	return fn()
}

// runExecute evaluates a procedure invocation: the body runs once per
// binding of the from/where clause with arguments as parameters.
func (db *DB) runExecute(s *ast.Execute, params *paramScope) error {
	ck := db.checker(params)
	ce, err := ck.CheckExecute(s)
	if err != nil {
		return err
	}
	if err := db.authQuery(ce.Query, nil); err != nil {
		return err
	}
	ptypes := make(map[string]types.Type, len(ce.Proc.Params))
	for _, p := range ce.Proc.Params {
		ptypes[p.Name] = p.Type
	}
	// Definer rights: the body runs with the owner's privileges, so a
	// procedure can encapsulate updates its caller could not perform
	// directly (the IDM stored-command pattern the paper builds data
	// abstraction from).
	caller := db.user
	if ce.Proc.Owner != "" {
		db.user = ce.Proc.Owner
	}
	defer func() { db.user = caller }()
	_, err = db.withParamsN(params, func() (int, error) {
		return db.exec.Execute(ce, func(frame map[string]value.Value) error {
			scope := &paramScope{types: ptypes, values: frame}
			for _, bodyStmt := range ce.Proc.Body {
				// Body statements run untraced: their cost is already
				// inside the invoking execute's span.
				if _, err := db.runStmt(bodyStmt, scope, nil); err != nil {
					return fmt.Errorf("procedure %s: %w", ce.Proc.Name, err)
				}
			}
			return nil
		})
	})
	return err
}

// authQuery enforces select on every extent and database variable a
// query reads (range sources, whole-extent aggregates, variable reads in
// any expression) and update on the write targets. Reads inside EXCESS
// function bodies are deliberately exempt — that exemption is the data
// abstraction mechanism of §4.2.3.
func (db *DB) authQuery(q sema.Query, writes []string, exprs ...sema.Expr) error {
	reads := map[string]bool{}
	for _, v := range q.Vars {
		if v.Extent != "" {
			reads[v.Extent] = true
		}
	}
	collect := func(e sema.Expr) {
		sema.WalkExpr(e, func(x sema.Expr) {
			switch r := x.(type) {
			case *sema.DBVarRead:
				reads[r.Name] = true
			case *sema.ExtentSet:
				reads[r.Name] = true
			}
		})
	}
	collect(q.Where)
	for _, e := range exprs {
		collect(e)
	}
	for name := range reads {
		if err := db.auth.Check(db.user, name, authz.Select); err != nil {
			return err
		}
	}
	for _, w := range writes {
		if w == "" {
			continue
		}
		if err := db.auth.Check(db.user, w, authz.Update); err != nil {
			return err
		}
	}
	return nil
}

// CheckConsistency runs the object store's structural fsck: ownership
// symmetry, extent maps, index completeness and uniqueness. It returns
// the violations found (nil means consistent).
func (db *DB) CheckConsistency() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.store.CheckConsistency()
}
