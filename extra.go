// Package extra is a Go implementation of EXTRA and EXCESS — the data
// model and query language designed for the EXODUS extensible database
// system (Carey, DeWitt and Vandenberg, SIGMOD 1988).
//
// EXTRA provides tuple, set, fixed- and variable-length array and
// reference type constructors, three attribute-value semantics (own, ref
// and own ref), multiple inheritance over schema types, and an abstract
// data type facility. EXCESS is the QUEL-derived query language over
// it: range variables, implicit joins through reference paths, nested
// set queries, aggregates with by/over partitioning, universal
// quantification, updates, functions (derived data) and procedures
// (stored commands).
//
// Quick start:
//
//	db, _ := extra.Open()
//	defer db.Close()
//	db.MustExec(`
//	    define type Person: ( name: char[20], age: int4 )
//	    create People : { own Person }
//	    append to People (name = "Alice", age = 41)
//	`)
//	res, _ := db.Query(`retrieve (P.name) from P in People where P.age > 40`)
//	fmt.Print(res)
//
// # Concurrency
//
// Statements are classified by the sema layer: a retrieve without an
// into clause is read-only; everything else (updates, DDL, range
// declarations, grants, procedure executions) is a write. Reads use
// MVCC snapshots: each read statement pins the store's latest
// immutable snapshot during a short shared-lock window and then
// executes entirely against it, lock-free — readers never block behind
// a writer, no matter how long the write runs. Writes serialize on a
// dedicated write mutex, mutate the live store, and publish a new
// snapshot (copy-on-write: only the extents, variables and index trees
// the statement dirtied are rebuilt) via an atomic pointer swap.
// DB.NewSession returns a per-client Session with its own user
// identity and range declarations; the DB-level Exec/Query methods are
// shorthands for a built-in default session. A DB and its Sessions are
// safe for concurrent use by multiple goroutines.
package extra

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/algebra"
	"repro/internal/authz"
	"repro/internal/catalog"
	"repro/internal/deadlock"
	"repro/internal/excess/sema"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/value"
	"repro/internal/wal"
)

// errDBClosed reports use of a closed database.
var errDBClosed = errors.New("database is closed")

// beginPin opens a read statement's pin window: it takes the shared
// statement lock and reports whether the database is still open. On
// false the lock has already been released; on true the caller owns a
// read hold and must end the window with db.mu.RUnlock() once it has
// pinned a snapshot and finished planning.
//
// extra:holds db.mu.R
func (db *DB) beginPin() bool {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return false
	}
	return true
}

// Result re-exports the executor's result set.
type Result = exec.Result

// Row re-exports the executor's result row.
type Row = exec.Row

// OptimizerOptions re-exports the optimizer switches (zero value: all
// optimizations on).
type OptimizerOptions = algebra.Options

// PoolStats re-exports buffer pool counters.
type PoolStats = storage.PoolStats

// Metrics re-exports the engine metrics registry (counters, gauges,
// latency histograms). See DB.Metrics.
type Metrics = metrics.Registry

// MetricsSnapshot re-exports a point-in-time copy of the registry.
type MetricsSnapshot = metrics.Snapshot

// DB is an EXTRA/EXCESS database: catalog, object store, buffer pool,
// metrics and the shared executor engine core. Read statements
// (retrieve without into) pin an immutable store snapshot and run
// lock-free against it; write statements serialize on the write mutex
// and publish a new snapshot on commit — so a DB is safe for
// concurrent use by multiple goroutines, concurrent reads scale across
// cores, and a bulk update never stalls readers. Per-client state
// (user, range declarations) lives in Sessions (NewSession); the DB's
// own Exec/Query run on a built-in default session.
type DB struct {
	// wmu is the commit lock: every write statement batch holds it for
	// the batch's duration, mutating the live store and publishing a
	// snapshot per statement. Lock order: wmu before mu, always —
	// enforced at runtime under `-tags deadlockcheck` by the
	// internal/deadlock sentinel the wrapper type carries.
	wmu deadlock.Mutex // extra:lock db.wmu
	// mu guards the narrow coherence windows that remain after MVCC:
	// the closed flag, read statements' snapshot-pin + plan windows
	// (shared), and DDL's catalog-mutation + commit window (exclusive),
	// so a pinned reader never plans against a catalog newer than its
	// snapshot. It is held for the pin window only — never across read
	// execution.
	mu    deadlock.RWMutex // extra:lock db.mu
	reg   *adt.Registry
	cat   *catalog.Catalog
	pool  *storage.BufferPool
	store *object.Store
	exec  *exec.Executor
	auth  *authz.Authorizer

	closed bool

	def         *Session     // default session backing DB.Exec/Query
	nextSession atomic.Int64 // session id allocator (default session is 0)

	metrics *metrics.Registry
	// Pre-resolved hot-path metric handles (one atomic add each, no
	// registry lookup on the statement path). Histograms and counters
	// are internally atomic: safe to observe from concurrent readers.
	hParse, hCheck, hPlan, hCompile, hExecute, hStmt *metrics.Histogram
	cRows, cErrors                                   *metrics.Counter

	// plans is the engine-wide compiled-statement cache (see
	// plancache.go): repeated unprepared retrieves amortize
	// parse/check/plan to a map hit. Keyed on catalog version, so DDL
	// invalidates it wholesale.
	plans *planCache

	// Slow-query log: a ring buffer of the last slowCap statements that
	// exceeded slowThreshold. Guarded by slowMu — its own lock, not the
	// statement lock, because concurrent readers finish statements
	// concurrently and each may need to append an entry.
	slowMu        sync.Mutex // extra:lock db.slowMu
	slowThreshold time.Duration
	slowCap       int
	slow          []SlowQuery
	slowNext      int

	// tracer owns statement-trace sampling and the ring of completed
	// span trees (see tracing.go); labelStmts turns on per-statement
	// runtime/pprof labels, set when the ops-plane debug server is up so
	// CPU profiles attribute samples to sessions and statement kinds.
	tracer     *trace.Tracer
	labelStmts atomic.Bool
	debug      *debugServer

	// wal, when non-nil, write-ahead-logs every committed write (see
	// wal.go). Assigned once during Open, after recovery replay — replay
	// re-executes statements with wal still nil, which is what keeps
	// them from being re-logged. walDir holds the log directory for
	// Checkpoint.
	wal    *wal.Log
	walDir string
}

// Option configures Open.
type Option func(*config)

type config struct {
	poolPages     int
	filePath      string
	slowThreshold time.Duration
	slowCap       int
	traceEvery    int
	traceCap      int
	debugAddr     string
	walDir        string
	walSync       wal.SyncMode
}

// WithPoolSize sets the buffer pool capacity in pages (default 256).
func WithPoolSize(pages int) Option {
	return func(c *config) { c.poolPages = pages }
}

// WithFileStore backs pages with the given file instead of memory.
func WithFileStore(path string) Option {
	return func(c *config) { c.filePath = path }
}

// WithSlowQueryLog configures the slow-query log: statements slower
// than threshold are kept in a ring buffer of the last capacity
// entries, retrievable via SlowQueries. A threshold of 0 disables
// logging. The default is 100ms with capacity 32.
func WithSlowQueryLog(threshold time.Duration, capacity int) Option {
	return func(c *config) {
		c.slowThreshold = threshold
		c.slowCap = capacity
	}
}

// Open creates a database. The ADT registry comes preloaded with the
// built-in Date and Complex types of the paper's figures.
func Open(opts ...Option) (*DB, error) {
	cfg := config{poolPages: 256, slowThreshold: 100 * time.Millisecond, slowCap: 32, traceCap: 16}
	for _, o := range opts {
		o(&cfg)
	}
	return open(cfg, adt.NewRegistry())
}

// open builds a DB over an existing ADT registry. Load's staging pass
// uses it to validate a dump in a scratch database that shares the real
// database's registry, so application-registered ADTs resolve there too.
func open(cfg config, reg *adt.Registry) (*DB, error) {
	if cfg.slowCap < 1 {
		cfg.slowCap = 1
	}
	var ps storage.PageStore
	if cfg.filePath != "" {
		fs, err := storage.OpenFileStore(cfg.filePath)
		if err != nil {
			return nil, err
		}
		ps = fs
	} else {
		ps = storage.NewMemStore()
	}
	cat := catalog.New(reg)
	pool := storage.NewBufferPool(ps, cfg.poolPages)
	store := object.New(pool, cat)
	mreg := metrics.NewRegistry()
	db := &DB{
		reg:   reg,
		cat:   cat,
		pool:  pool,
		store: store,
		exec:  exec.New(store, cat),
		auth:  authz.New(),

		metrics:  mreg,
		hParse:   mreg.Histogram("phase.parse"),
		hCheck:   mreg.Histogram("phase.check"),
		hPlan:    mreg.Histogram("phase.plan"),
		hCompile: mreg.Histogram("phase.compile"),
		hExecute: mreg.Histogram("phase.execute"),
		hStmt:    mreg.Histogram("stmt.latency"),
		cRows:    mreg.Counter("rows.returned"),
		cErrors:  mreg.Counter("stmt.errors"),

		plans: newPlanCache(defaultPlanCacheCap, mreg),

		slowThreshold: cfg.slowThreshold,
		slowCap:       cfg.slowCap,

		tracer: trace.NewTracer(cfg.traceEvery, cfg.traceCap),
	}
	db.wmu.SetName("db.wmu")
	db.mu.SetName("db.mu")
	db.exec.SetMetrics(mreg)
	db.def = &Session{db: db, id: 0, user: "dba", sem: sema.NewSession()}
	if cfg.walDir != "" {
		// Recovery before anything else can observe the DB: checkpoint
		// restore, then log replay, then the log is live for appends.
		if err := db.openWAL(cfg.walDir, cfg.walSync); err != nil {
			db.pool.Store().Close()
			return nil, err
		}
	}
	if cfg.debugAddr != "" {
		if err := db.startDebugServer(cfg.debugAddr); err != nil {
			if db.wal != nil {
				db.wal.Close()
			}
			db.pool.Store().Close()
			return nil, err
		}
	}
	return db, nil
}

// Close flushes dirty pages and releases the page store. It takes the
// write lock first (draining any in-flight write batch) and then the
// statement lock, so no statement — read pin window or write — is
// mid-flight when the pool flushes.
//
// extra:acquires db.wmu.W
// extra:acquires db.mu.W
func (db *DB) Close() error {
	db.stopDebugServer()
	db.wmu.Lock()
	defer db.wmu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var walErr error
	if db.wal != nil {
		// Drains and fsyncs whatever the flusher still holds, so a clean
		// Close leaves nothing for the next recovery to lose.
		walErr = db.wal.Close()
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.pool.Store().Sync(); err != nil {
		return err
	}
	if err := db.pool.Store().Close(); err != nil {
		return err
	}
	return walErr
}

// Registry exposes the ADT registry for registering new abstract data
// types, operators and generic set functions from Go — the E-language
// extension path of the paper.
func (db *DB) Registry() *adt.Registry { return db.reg }

// Catalog exposes the schema catalog (read-mostly introspection).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// SetOptimizer configures query optimization (benchmarks use this to
// compare optimized and naive plans). It takes the write lock and the
// exclusive statement lock so options never change under a running
// write batch or inside a reader's pin window (readers copy the
// options into their State while pinned and use the copy thereafter).
//
// extra:acquires db.wmu.W
// extra:acquires db.mu.W
func (db *DB) SetOptimizer(o OptimizerOptions) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.exec.SetOptions(o)
}

// PoolStats returns buffer pool counters: one atomic load per counter,
// safe to sample while statements run.
func (db *DB) PoolStats() PoolStats { return db.pool.Stats() }

// ResetPoolStats zeroes buffer pool counters.
func (db *DB) ResetPoolStats() { db.pool.ResetStats() }

// Metrics exposes the engine metrics registry: statement counters by
// kind, parse/check/plan/execute phase latency histograms, rows
// returned and error counts. The registry is safe for concurrent
// reads while statements execute.
func (db *DB) Metrics() *Metrics { return db.metrics }

// MetricsSnapshot copies the registry and merges in the buffer pool
// counters (pool.hits, pool.misses, pool.evictions, pool.flushes,
// pool.writebacks), giving one coherent observability document. Every
// counter in the snapshot is a single atomic read of a monotonic
// value — sampling mid-statement never observes a torn or decreasing
// counter, and two snapshots bracket the traffic between them. The
// pool counters are sampled first, so pool.hits+pool.misses can only
// lag (never lead) the statement counters taken in the same pass.
//
// extra:output
func (db *DB) MetricsSnapshot() MetricsSnapshot {
	ps := db.pool.Stats()
	s := db.metrics.Snapshot()
	s.Counters["pool.hits"] = ps.Hits
	s.Counters["pool.misses"] = ps.Misses
	s.Counters["pool.evictions"] = ps.Evictions
	s.Counters["pool.flushes"] = ps.Flushes
	s.Counters["pool.writebacks"] = ps.WriteBacks
	return s
}

// SlowQuery is one slow-query log entry: the statement source with its
// phase breakdown, result size and the session that ran it. When the
// statement was also trace-sampled, TraceID links to the full span tree
// (DB.TraceByID, the shell's \trace, or the ops plane's /traces/{id});
// 0 means the statement was not sampled.
type SlowQuery struct {
	Src     string        `json:"src"`
	Session int64         `json:"session"`
	When    time.Time     `json:"when"`
	Total   time.Duration `json:"total_ns"`
	Parse   time.Duration `json:"parse_ns"`
	Check   time.Duration `json:"check_ns"`
	Plan    time.Duration `json:"plan_ns"`
	Execute time.Duration `json:"execute_ns"`
	Rows    int           `json:"rows"`
	TraceID uint64        `json:"trace_id,omitempty"`
}

// SlowQueries returns the retained slow statements, oldest first.
//
// extra:acquires db.slowMu.W
func (db *DB) SlowQueries() []SlowQuery {
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	out := make([]SlowQuery, 0, len(db.slow))
	if len(db.slow) == db.slowCap {
		out = append(out, db.slow[db.slowNext:]...)
		out = append(out, db.slow[:db.slowNext]...)
		return out
	}
	return append(out, db.slow...)
}

// SetSlowQueryThreshold adjusts the slow-query threshold at run time;
// 0 disables logging.
//
// extra:acquires db.slowMu.W
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	db.slowThreshold = d
}

// Exec parses and runs one or more EXCESS statements on the default
// session, returning the result of the last retrieve (nil if none).
func (db *DB) Exec(src string) (*Result, error) { return db.def.Exec(src) }

// Query is Exec for a single retrieve; it errors when the source is not
// exactly one retrieve statement. Retrieves without an into clause run
// against a pinned snapshot, concurrently with writers and other
// readers.
func (db *DB) Query(src string) (*Result, error) { return db.def.Query(src) }

// MustExec runs statements and panics on error; for examples and tests.
func (db *DB) MustExec(src string) *Result { return db.def.MustExec(src) }

// MustQuery runs a retrieve and panics on error.
func (db *DB) MustQuery(src string) *Result { return db.def.MustQuery(src) }

// targetExprs collects the bound target expressions of a retrieve (for
// authorization walks).
func targetExprs(cq *sema.CheckedRetrieve) []sema.Expr {
	texprs := make([]sema.Expr, len(cq.Targets))
	for i, tc := range cq.Targets {
		texprs[i] = tc.Expr
	}
	return texprs
}

// paramScope carries the parameter names/types/values of an executing
// procedure body.
type paramScope struct {
	types  map[string]types.Type
	values map[string]value.Value
}

func (p *paramScope) typesOrNil() map[string]types.Type {
	if p == nil {
		return nil
	}
	return p.types
}

// CheckConsistency runs the object store's structural fsck: ownership
// symmetry, extent maps, index completeness and uniqueness. It returns
// the violations found (nil means consistent). It inspects the live
// store's working state — including the working index trees — so it
// holds the write lock, excluding writers rather than readers.
//
// extra:acquires db.wmu.W
// extra:output
func (db *DB) CheckConsistency() []string {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return db.store.CheckConsistency()
}
