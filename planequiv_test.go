package extra_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	extra "repro"
	"repro/internal/workload"
)

// TestPlanEquivalence is the optimizer's correctness property: for
// randomly generated queries over the synthetic company, the optimized
// plan (pushdown + reordering + index selection) must return exactly the
// same multiset of rows as the naive plan. This exercises conjunct
// placement, index bound construction and join reordering end to end.
func TestPlanEquivalence(t *testing.T) {
	db, _, err := workload.New(workload.Params{
		Departments: 8, Employees: 120, MaxKids: 3, Floors: 4, MaxSalary: 1000, Seed: 99,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.MustExec(`define index emp_sal on Employees (salary)`)
	db.MustExec(`define index emp_age on Employees (age)`)

	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 60; i++ {
		q := randomQuery(rng)
		db.SetOptimizer(extra.OptimizerOptions{})
		opt, err := db.Query(q)
		if err != nil {
			t.Fatalf("optimized %q: %v", q, err)
		}
		db.SetOptimizer(extra.OptimizerOptions{NoPushdown: true, NoIndexSelect: true, NoReorder: true})
		naive, err := db.Query(q)
		if err != nil {
			t.Fatalf("naive %q: %v", q, err)
		}
		if got, want := canon(opt), canon(naive); got != want {
			t.Fatalf("plans disagree for %q:\noptimized (%d rows): %s\nnaive (%d rows): %s",
				q, len(opt.Rows), got, len(naive.Rows), want)
		}
	}
}

// randomQuery builds a retrieve over Employees/Departments with 1–3
// random conjuncts drawn from comparisons, implicit-join paths, nested
// set aggregates and is-joins.
func randomQuery(rng *rand.Rand) string {
	conjs := []string{
		fmt.Sprintf("E.salary %s %d", cmpOp(rng), rng.Intn(1000)),
		fmt.Sprintf("E.age %s %d", cmpOp(rng), 20+rng.Intn(45)),
		fmt.Sprintf("E.dept.floor = %d", 1+rng.Intn(4)),
		fmt.Sprintf("count(E.kids) %s %d", cmpOp(rng), rng.Intn(3)),
		"E.dept is D",
		fmt.Sprintf("D.floor %s %d", cmpOp(rng), 1+rng.Intn(4)),
		fmt.Sprintf("D.budget < %d", rng.Intn(1000000)),
	}
	n := 1 + rng.Intn(3)
	rng.Shuffle(len(conjs), func(i, j int) { conjs[i], conjs[j] = conjs[j], conjs[i] })
	picked := conjs[:n]
	needsD := false
	for _, c := range picked {
		if strings.Contains(c, "D.") || strings.Contains(c, "is D") {
			needsD = true
		}
	}
	from := "from E in Employees"
	targets := "E.name, E.salary"
	if needsD {
		from += ", D in Departments"
		targets += ", D.dname"
	}
	return fmt.Sprintf("retrieve (%s) %s where %s", targets, from, strings.Join(picked, " and "))
}

func cmpOp(rng *rand.Rand) string {
	return []string{"<", "<=", ">", ">=", "=", "!="}[rng.Intn(6)]
}

// canon renders a result as a sorted multiset string.
func canon(r *extra.Result) string {
	lines := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
