package extra

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/oid"
	"repro/internal/types"
	"repro/internal/value"
	"repro/internal/wal"
)

// Attrs is a Go-side attribute map for bulk loading: keys are attribute
// names, values are Go natives (int, int64, float64, string, bool), Obj
// references, []any collections, or nested Attrs for embedded tuples.
type Attrs map[string]any

// Obj is an opaque handle to a stored object, returned by Insert and
// usable as a reference value in later Attrs.
type Obj struct {
	id  oid.OID
	typ string
}

// Valid reports whether the handle refers to an object.
func (o Obj) Valid() bool { return !o.id.IsNil() }

// String renders the handle for diagnostics.
func (o Obj) String() string { return fmt.Sprintf("%s<%s>", o.id, o.typ) }

// Insert bulk-loads one object into an object-set extent without going
// through the EXCESS parser — the API a loader utility would use. Nested
// own and own-ref components may be given as Attrs / []any trees; the
// store applies the usual internalization (ownership, padding, range
// checks). Like any mutation it serializes on the write lock and
// publishes a snapshot, so concurrent readers see each inserted object
// atomically.
//
// extra:acquires db.wmu.W
func (db *DB) Insert(extent string, attrs Attrs) (Obj, error) {
	v, ok := db.cat.Var(extent)
	if !ok || !v.IsObjectSet() {
		return Obj{}, fmt.Errorf("%s is not an object-set extent", extent)
	}
	elem, _ := v.ElemType()
	tt := elem.Type.(*types.TupleType)
	tv, err := db.tupleFromAttrs(tt, attrs)
	if err != nil {
		return Obj{}, err
	}
	id, lsn, err := db.insertTuple(extent, tv)
	if derr := db.waitDurable(lsn); derr != nil && err == nil {
		err = derr
	}
	if err != nil {
		return Obj{}, err
	}
	return Obj{id: id, typ: tt.Name}, nil
}

// insertTuple is Insert's critical section: store the tuple, publish,
// and log. The tuple is serialized before insertion so the WAL holds
// the pre-insert value — replay re-runs the same insertion and the
// sequential OID generator re-allocates the same identity. Recovery
// replays through here too (db.wal is nil then, so nothing re-logs).
//
// extra:acquires db.wmu.W
// extra:mutates
func (db *DB) insertTuple(extent string, tv *value.Tuple) (oid.OID, uint64, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	var rec *wal.Record
	if db.wal != nil {
		// An unencodable or oversize tuple refuses the insert while
		// nothing has mutated: the engine has no rollback, and a
		// published insert the log cannot hold would be invisible to
		// recovery.
		enc, err := codec.Encode(nil, tv)
		if err != nil {
			return 0, 0, err
		}
		rec = &wal.Record{
			Kind: wal.RecordInsert,
			User: "dba",
			Src:  extent,
			Data: [][]byte{enc},
		}
		if sz := rec.PayloadSize(); sz > wal.MaxRecord {
			return 0, 0, fmt.Errorf("insert refused: %w (payload %d bytes, limit %d)", wal.ErrTooLarge, sz, wal.MaxRecord)
		}
	}
	id, err := db.store.Insert(extent, tv)
	published, cerr := db.store.Commit()
	if cerr != nil && err == nil {
		err = cerr
	}
	var lsn uint64
	if rec != nil && (err == nil || published) {
		rec.Erred = err != nil
		var lerr error
		lsn, lerr = db.wal.Append(rec)
		if lerr != nil && err == nil {
			err = lerr
		}
	}
	return id, lsn, err
}

// SetRef stores a reference attribute on an object (bulk wiring of
// relationships without EXCESS).
//
// extra:acquires db.wmu.W
func (db *DB) SetRef(obj Obj, attr string, target Obj) error {
	lsn, err := db.setRefLocked(obj, attr, target)
	if derr := db.waitDurable(lsn); derr != nil && err == nil {
		err = derr
	}
	return err
}

// setRefLocked is SetRef's critical section: update, publish, log.
//
// extra:acquires db.wmu.W
// extra:mutates
func (db *DB) setRefLocked(obj Obj, attr string, target Obj) (uint64, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	tv, ok, err := db.store.Get(obj.id)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("object %s no longer exists", obj)
	}
	if i := tv.Type.AttrIndex(attr); i < 0 {
		return 0, fmt.Errorf("type %s has no attribute %s", tv.Type.Name, attr)
	}
	var nv value.Value = value.Null{}
	if target.Valid() {
		nv = value.Ref{OID: target.id, Type: target.typ}
	}
	var rec *wal.Record
	if db.wal != nil {
		// Build and size the record before touching the store: the
		// engine has no rollback, so a published write the log cannot
		// hold would be invisible to recovery.
		targetOID, targetTyp := []byte(nil), []byte(nil)
		if target.Valid() {
			targetOID, targetTyp = oidBytes(target.id), []byte(target.typ)
		}
		rec = &wal.Record{
			Kind: wal.RecordSetRef,
			User: "dba",
			Src:  attr,
			Data: [][]byte{oidBytes(obj.id), []byte(obj.typ), targetOID, targetTyp},
		}
		if sz := rec.PayloadSize(); sz > wal.MaxRecord {
			return 0, fmt.Errorf("setref refused: %w (payload %d bytes, limit %d)", wal.ErrTooLarge, sz, wal.MaxRecord)
		}
	}
	tv.Set(attr, nv)
	err = db.store.Update(obj.id, tv)
	published, cerr := db.store.Commit()
	if cerr != nil && err == nil {
		err = cerr
	}
	var lsn uint64
	if rec != nil && (err == nil || published) {
		rec.Erred = err != nil
		var lerr error
		lsn, lerr = db.wal.Append(rec)
		if lerr != nil && err == nil {
			err = lerr
		}
	}
	return lsn, err
}

// tupleFromAttrs converts a Go attribute map into a typed tuple value.
func (db *DB) tupleFromAttrs(tt *types.TupleType, attrs Attrs) (*value.Tuple, error) {
	tv := value.NewTuple(tt)
	for name, raw := range attrs {
		a, ok := tt.Attr(name)
		if !ok {
			return nil, fmt.Errorf("type %s has no attribute %s", tt.Name, name)
		}
		vv, err := db.valueFromGo(a.Comp, raw)
		if err != nil {
			return nil, fmt.Errorf("attribute %s: %w", name, err)
		}
		tv.Set(name, vv)
	}
	return tv, nil
}

// valueFromGo converts one Go native into an EXTRA value for a slot.
func (db *DB) valueFromGo(comp types.Component, raw any) (value.Value, error) {
	switch x := raw.(type) {
	case nil:
		return value.Null{}, nil
	case int:
		return numFor(comp.Type, float64(x), int64(x), true), nil
	case int64:
		return numFor(comp.Type, float64(x), x, true), nil
	case float64:
		return numFor(comp.Type, x, int64(x), false), nil
	case string:
		return value.NewStr(x), nil
	case bool:
		return value.Bool(x), nil
	case Obj:
		return value.Ref{OID: x.id, Type: x.typ}, nil
	case value.Value:
		return x, nil
	case Attrs:
		ett, ok := elemTuple(comp)
		if !ok {
			return nil, fmt.Errorf("nested attrs need a tuple-typed slot, have %s", comp.Type)
		}
		return db.tupleFromAttrs(ett, x)
	case []any:
		elem, ok := types.ElemOf(comp.Type)
		if !ok {
			return nil, fmt.Errorf("slice needs a collection slot, have %s", comp.Type)
		}
		out := make([]value.Value, 0, len(x))
		for _, e := range x {
			ev, err := db.valueFromGo(elem, e)
			if err != nil {
				return nil, err
			}
			out = append(out, ev)
		}
		if at, isArr := comp.Type.(*types.Array); isArr {
			return &value.Array{Elems: out, Fixed: at.Fixed}, nil
		}
		return &value.Set{Elems: out}, nil
	}
	return nil, fmt.Errorf("unsupported Go value %T", raw)
}

func elemTuple(comp types.Component) (*types.TupleType, bool) {
	if tt, ok := comp.Type.(*types.TupleType); ok {
		return tt, true
	}
	return nil, false
}

// numFor shapes a Go number for the declared slot type.
func numFor(t types.Type, f float64, i int64, isInt bool) value.Value {
	switch t.Kind() {
	case types.KFloat4, types.KFloat8:
		return value.NewFloat(f)
	case types.KInt1, types.KInt2, types.KInt4:
		return value.Int{K: t.Kind(), V: i}
	}
	if isInt {
		return value.NewInt(i)
	}
	return value.NewFloat(f)
}
