package extra

import (
	"time"

	"repro/internal/algebra"
	"repro/internal/trace"
)

// This file is the database layer's side of statement tracing: the
// sampling configuration surface, the conversion of finished statements
// into metrics + slow-log + retained traces, and the synthesis of
// operator/storage spans from an instrumented retrieve's runtime
// actuals. The span model itself lives in internal/trace.

// Trace re-exports one completed statement trace (see DB.LastTrace,
// DB.TraceByID and trace.Render).
type Trace = trace.Trace

// TracerStats re-exports the tracer's lifecycle counters.
type TracerStats = trace.Stats

// WithTracing configures statement tracing at Open: one statement in
// every is sampled into a full span tree (0 disables, 1 traces every
// statement) and the last capacity sampled traces are retained. The
// default is tracing off with a ring of 16; sampling can be changed at
// run time with SetTraceSampling.
func WithTracing(every, capacity int) Option {
	return func(c *config) {
		c.traceEvery = every
		c.traceCap = capacity
	}
}

// Tracer exposes the statement tracer (sampling control, retained
// traces, lifecycle stats).
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// SetTraceSampling adjusts the head-sampling rate at run time: 0
// disables tracing, 1 traces every statement, N traces one in N. The
// decision is made once per statement, so an unsampled statement pays
// one atomic load and nothing else.
func (db *DB) SetTraceSampling(every int) { db.tracer.SetEvery(every) }

// LastTrace returns the most recently completed sampled trace, or nil.
func (db *DB) LastTrace() *Trace { return db.tracer.Last() }

// TraceByID returns the retained trace with the given id, or nil when
// it aged out of the ring.
func (db *DB) TraceByID(id uint64) *Trace { return db.tracer.Get(id) }

// Traces returns the retained traces, oldest first.
func (db *DB) Traces() []*Trace { return db.tracer.Traces() }

// finishTrace records one finished Exec/Query call: phase histograms
// and row counts into the registry for every statement, the slow-query
// ring (with the sampled trace's id, when there is one) when over
// threshold, and the sealed span tree into the tracer's ring when the
// statement was sampled. The histograms are atomic; only the slow-query
// ring needs its lock, so concurrent readers finishing simultaneously
// contend only on that. user is captured by the caller inside its lock
// window — snapshot readers finish outside any engine lock, where
// reading s.user directly would race SetUser.
//
// extra:acquires db.slowMu.W
func (db *DB) finishTrace(sid int64, user, src, kind string, tr *trace.StmtTrace, start time.Time) {
	total := time.Since(start)
	db.hParse.Observe(tr.Dur(trace.PhaseParse))
	db.hCheck.Observe(tr.Dur(trace.PhaseCheck))
	db.hPlan.Observe(tr.Dur(trace.PhasePlan))
	db.hCompile.Observe(tr.Dur(trace.PhaseCompile))
	db.hExecute.Observe(tr.Dur(trace.PhaseExecute))
	db.hStmt.Observe(total)
	db.cRows.Add(uint64(tr.Rows))
	traceID := tr.TraceID()
	tr.Finish(src, sid, user, kind, total)
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	if db.slowThreshold > 0 && total >= db.slowThreshold {
		entry := SlowQuery{
			Src: src, Session: sid, When: time.Now(), Total: total,
			Parse:   tr.Dur(trace.PhaseParse),
			Check:   tr.Dur(trace.PhaseCheck),
			Plan:    tr.Dur(trace.PhasePlan),
			Execute: tr.Dur(trace.PhaseExecute),
			Rows:    tr.Rows, TraceID: traceID,
		}
		if len(db.slow) < db.slowCap {
			db.slow = append(db.slow, entry)
			db.slowNext = len(db.slow) % db.slowCap
		} else {
			db.slow[db.slowNext] = entry
			db.slowNext = (db.slowNext + 1) % db.slowCap
		}
	}
}

// abortTrace seals a sampled trace when its statement errored, so spans
// never leak on the unwind path. Error statements keep the seed's
// metrics behavior (counted in stmt.errors, not observed in the phase
// histograms), but the trace — annotated with the error — is retained:
// failed statements are exactly the ones worth looking at.
func (db *DB) abortTrace(sid int64, user, src, kind string, tr *trace.StmtTrace, start time.Time, err error) {
	if !tr.Sampled() {
		return
	}
	tr.Active().Attr(0, "error", err.Error())
	tr.Finish(src, sid, user, kind, time.Since(start))
}

// addRetrieveSpans converts an instrumented retrieve's runtime actuals
// into spans under the (still open) execute phase: one operator span
// per plan node, nested to mirror the nested-iteration pipeline, plus
// storage spans attributing buffer-pool and deref-cache traffic.
//
// A node's span duration is its own self time plus everything inner —
// the pipeline's cumulative cost from that node down — matching how the
// operators actually contain each other at run time. Pool deltas come
// from the pool's atomic counters bracketing the run: under concurrent
// statements a neighbour's traffic can bleed into the delta, the
// documented price of keeping Pin unhooked (see DESIGN.md §9).
func (s *Session) addRetrieveSpans(tr *trace.StmtTrace, pt trace.PhaseTimer, plan *algebra.Plan, rt *algebra.PlanRuntime, poolBase PoolStats) {
	a := tr.Active()
	execSpan := pt.Span()
	start := pt.Start()
	durs := make([]time.Duration, len(plan.Nodes)+1)
	for i := len(plan.Nodes) - 1; i >= 0; i-- {
		durs[i] = durs[i+1] + rt.Nodes[i].Time
	}
	parent := execSpan
	for i := range plan.Nodes {
		nr := rt.Nodes[i]
		sp := a.AddSpan(parent, trace.KindOperator, algebra.DescribeNode(&plan.Nodes[i]), start, durs[i])
		a.AttrInt(sp, "loops", nr.Loops)
		a.AttrInt(sp, "rows_in", nr.RowsIn)
		a.AttrInt(sp, "rows_out", nr.RowsOut)
		a.AttrInt(sp, "pool_hits", int64(nr.PoolHits))
		a.AttrInt(sp, "pool_misses", int64(nr.PoolMisses))
		if plan.Nodes[i].Hash != nil {
			a.AttrInt(sp, "hash_probes", nr.HashProbes)
			a.AttrInt(sp, "hash_hits", nr.HashHits)
		}
		parent = sp
	}
	delta := s.db.pool.Stats().Sub(poolBase)
	sp := a.AddSpan(execSpan, trace.KindStorage, "buffer pool", start, 0)
	a.AttrInt(sp, "hits", int64(delta.Hits))
	a.AttrInt(sp, "misses", int64(delta.Misses))
	if delta.Evictions > 0 {
		a.AttrInt(sp, "evictions", int64(delta.Evictions))
	}
	if delta.WriteBacks > 0 {
		a.AttrInt(sp, "writebacks", int64(delta.WriteBacks))
	}
	sp = a.AddSpan(execSpan, trace.KindStorage, "deref cache", start, 0)
	a.AttrInt(sp, "hits", rt.DerefHits)
	a.AttrInt(sp, "misses", rt.DerefMisses)
}
